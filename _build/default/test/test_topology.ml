(* Tests for Poc_topology: site generation, physical networks, and the
   WAN / logical-link generator that backs Figure 2. *)

module Site = Poc_topology.Site
module Physical = Poc_topology.Physical
module Wan = Poc_topology.Wan
module Graph = Poc_graph.Graph
module Paths = Poc_graph.Paths
module Prng = Poc_util.Prng

let small_params =
  {
    Wan.default_params with
    Wan.n_sites = 24;
    n_operators = 10;
    n_bps = 6;
    operator_min_sites = 5;
    operator_max_sites = 12;
    colocation_threshold = 2;
    external_attachments = 4;
  }

let small_wan = lazy (Wan.generate ~params:small_params ~seed:11 ())

(* --- Sites ---------------------------------------------------------------- *)

let test_site_generation () =
  let rng = Prng.create 1 in
  let sites = Site.generate rng ~count:30 ~extent_km:1000.0 in
  Alcotest.(check int) "count" 30 (Array.length sites);
  Array.iteri
    (fun i s ->
      Alcotest.(check int) "dense ids" i s.Site.id;
      Alcotest.(check bool) "in bounds" true
        (s.Site.x >= 0.0 && s.Site.x <= 1000.0 && s.Site.y >= 0.0
       && s.Site.y <= 1000.0))
    sites;
  let total = Array.fold_left (fun acc s -> acc +. s.Site.population) 0.0 sites in
  Alcotest.(check (float 1e-9)) "population normalized" 1.0 total

let test_site_zipf_ordering () =
  let rng = Prng.create 2 in
  let sites = Site.generate rng ~count:10 ~extent_km:500.0 in
  for i = 1 to 9 do
    Alcotest.(check bool) "non-increasing population" true
      (sites.(i).Site.population <= sites.(i - 1).Site.population)
  done

let test_site_distance () =
  let a = { Site.id = 0; name = "a"; x = 0.0; y = 0.0; population = 0.5 } in
  let b = { Site.id = 1; name = "b"; x = 3.0; y = 4.0; population = 0.5 } in
  Alcotest.(check (float 1e-9)) "euclidean" 5.0 (Site.distance a b)

let test_site_bad_args () =
  let rng = Prng.create 3 in
  Alcotest.check_raises "zero count"
    (Invalid_argument "Site.generate: count must be positive") (fun () ->
      ignore (Site.generate rng ~count:0 ~extent_km:100.0))

(* --- Physical networks ----------------------------------------------------- *)

let test_physical_connected () =
  let rng = Prng.create 4 in
  let sites = Site.generate rng ~count:20 ~extent_km:1000.0 in
  let footprint = Array.init 12 Fun.id in
  let phys =
    Physical.build rng sites ~footprint
      ~capacity_tiers:[| (1.0, 100.0) |]
      ~shortcut_fraction:0.3
  in
  Alcotest.(check bool) "connected" true (Paths.is_connected (Physical.graph phys));
  Alcotest.(check int) "all sites present" 12 (Array.length (Physical.sites phys))

let test_physical_path_metrics () =
  let rng = Prng.create 5 in
  let sites = Site.generate rng ~count:10 ~extent_km:500.0 in
  let footprint = [| 0; 1; 2; 3 |] in
  let phys =
    Physical.build rng sites ~footprint
      ~capacity_tiers:[| (1.0, 40.0) |]
      ~shortcut_fraction:0.0
  in
  (match Physical.path_metrics phys 0 1 with
  | None -> Alcotest.fail "footprint sites must be reachable"
  | Some (dist, cap) ->
    Alcotest.(check bool) "positive distance" true (dist > 0.0);
    Alcotest.(check (float 1e-9)) "tier capacity" 40.0 cap);
  Alcotest.(check bool) "same-site metrics" true
    (Physical.path_metrics phys 2 2 = Some (0.0, infinity));
  Alcotest.(check bool) "outside footprint" true
    (Physical.path_metrics phys 0 9 = None)

let test_physical_duplicate_footprint_rejected () =
  let rng = Prng.create 6 in
  let sites = Site.generate rng ~count:5 ~extent_km:100.0 in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Physical.build: duplicate site in footprint") (fun () ->
      ignore
        (Physical.build rng sites ~footprint:[| 1; 1 |]
           ~capacity_tiers:[| (1.0, 10.0) |]
           ~shortcut_fraction:0.0))

(* --- WAN -------------------------------------------------------------------- *)

let test_wan_determinism () =
  let a = Wan.generate ~params:small_params ~seed:11 () in
  let b = Wan.generate ~params:small_params ~seed:11 () in
  Alcotest.(check int) "same link count" (Array.length a.Wan.links)
    (Array.length b.Wan.links);
  Alcotest.(check (float 1e-9)) "same first cost"
    a.Wan.links.(0).Wan.true_cost b.Wan.links.(0).Wan.true_cost

let test_wan_link_graph_alignment () =
  let wan = Lazy.force small_wan in
  Alcotest.(check int) "one edge per link" (Array.length wan.Wan.links)
    (Graph.edge_count wan.Wan.graph);
  Array.iteri
    (fun i (l : Wan.logical_link) ->
      Alcotest.(check int) "dense ids" i l.Wan.id;
      let e = Graph.edge wan.Wan.graph i in
      Alcotest.(check bool) "endpoints match" true
        ((e.Graph.u = l.Wan.node_a && e.Graph.v = l.Wan.node_b)
        || (e.Graph.u = l.Wan.node_b && e.Graph.v = l.Wan.node_a));
      Alcotest.(check (float 1e-9)) "capacity matches" l.Wan.capacity
        e.Graph.capacity)
    wan.Wan.links

let test_wan_ownership_consistency () =
  let wan = Lazy.force small_wan in
  (* Every BP's link list points back to itself; virtual links to
     external ISPs. *)
  Array.iter
    (fun (bp : Wan.bp) ->
      Array.iter
        (fun id ->
          match wan.Wan.links.(id).Wan.owner with
          | Wan.Bp b -> Alcotest.(check int) "owner" bp.Wan.bp_id b
          | Wan.External_isp _ -> Alcotest.fail "bp list holds a virtual link")
        bp.Wan.link_ids)
    wan.Wan.bps;
  List.iter
    (fun id ->
      match wan.Wan.links.(id).Wan.owner with
      | Wan.External_isp _ -> ()
      | Wan.Bp _ -> Alcotest.fail "virtual list holds a BP link")
    (Wan.virtual_link_ids wan)

let test_wan_shares_sum_to_one () =
  let wan = Lazy.force small_wan in
  let total = Array.fold_left (fun acc bp -> acc +. bp.Wan.share) 0.0 wan.Wan.bps in
  Alcotest.(check (float 1e-9)) "shares" 1.0 total

let test_wan_every_bp_offers () =
  let wan = Lazy.force small_wan in
  Array.iter
    (fun (bp : Wan.bp) ->
      Alcotest.(check bool) (bp.Wan.bp_name ^ " offers links") true
        (Array.length bp.Wan.link_ids > 0))
    wan.Wan.bps

let test_wan_connected () =
  let wan = Lazy.force small_wan in
  Alcotest.(check bool) "offer pool connects all POC routers" true
    (Paths.is_connected wan.Wan.graph)

let test_wan_colocation_threshold () =
  let wan = Lazy.force small_wan in
  (* Each POC site must host at least threshold BP footprints. *)
  Array.iter
    (fun site ->
      let presence =
        Array.to_list wan.Wan.bps
        |> List.filter (fun (bp : Wan.bp) ->
               Array.exists (fun s -> s = site) bp.Wan.footprint)
        |> List.length
      in
      Alcotest.(check bool) "enough colocated BPs" true
        (presence >= small_params.Wan.colocation_threshold))
    wan.Wan.poc_sites

let test_wan_node_site_inverse () =
  let wan = Lazy.force small_wan in
  Array.iteri
    (fun node site ->
      Alcotest.(check (option int)) "inverse map" (Some node)
        wan.Wan.node_of_site.(site))
    wan.Wan.poc_sites

let test_wan_ordering_by_size () =
  let wan = Lazy.force small_wan in
  let order = Wan.bps_by_size wan in
  let sizes = List.map (fun b -> Array.length wan.Wan.bps.(b).Wan.link_ids) order in
  let sorted = List.sort (fun a b -> compare b a) sizes in
  Alcotest.(check (list int)) "descending" sorted sizes

let test_wan_costs_positive () =
  let wan = Lazy.force small_wan in
  Array.iter
    (fun (l : Wan.logical_link) ->
      Alcotest.(check bool) "positive cost" true (l.Wan.true_cost > 0.0);
      Alcotest.(check bool) "positive capacity" true (l.Wan.capacity > 0.0);
      Alcotest.(check bool) "latency consistent" true (l.Wan.latency_ms > 0.0))
    wan.Wan.links

let test_wan_bad_params_rejected () =
  Alcotest.check_raises "operators < bps"
    (Invalid_argument "Wan.generate: need n_operators >= n_bps > 0") (fun () ->
      ignore
        (Wan.generate ~params:{ small_params with Wan.n_operators = 2 } ~seed:1 ()))


(* --- Export ------------------------------------------------------------------ *)

module Export = Poc_topology.Export

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let test_graphml_well_formed () =
  let wan = Lazy.force small_wan in
  let xml = Export.graphml wan () in
  Alcotest.(check bool) "has header" true (contains xml "<?xml version");
  Alcotest.(check bool) "has graphml root" true (contains xml "<graphml");
  Alcotest.(check bool) "closes root" true (contains xml "</graphml>");
  (* One node element per POC router, one edge per offered link. *)
  let count needle =
    let rec go i acc =
      match String.index_from_opt xml i '<' with
      | None -> acc
      | Some j ->
        if j + String.length needle <= String.length xml
           && String.sub xml j (String.length needle) = needle
        then go (j + 1) (acc + 1)
        else go (j + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "node count" (Array.length wan.Wan.poc_sites)
    (count "<node id=");
  Alcotest.(check int) "edge count" (Array.length wan.Wan.links)
    (count "<edge id=")

let test_graphml_selected_attribute () =
  let wan = Lazy.force small_wan in
  let xml = Export.graphml wan ~selected:(fun id -> id = 0) () in
  Alcotest.(check bool) "selected key declared" true
    (contains xml "attr.name=\"selected\"");
  Alcotest.(check bool) "true value present" true
    (contains xml "<data key=\"selected\">true</data>")

let test_csv_row_counts () =
  let wan = Lazy.force small_wan in
  let rows s = List.length (String.split_on_char '\n' (String.trim s)) in
  Alcotest.(check int) "links csv rows" (Array.length wan.Wan.links + 1)
    (rows (Export.links_csv wan));
  Alcotest.(check int) "sites csv rows" (Array.length wan.Wan.sites + 1)
    (rows (Export.sites_csv wan))

let test_export_write_file () =
  let path = Filename.temp_file "poc_export" ".csv" in
  Export.write_file path "a,b\n1,2\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "round trip" "a,b" line

let qcheck_wan_seeds_structurally_sane =
  QCheck.Test.make ~name:"wan generator sane across seeds" ~count:8
    QCheck.(int_range 0 1000)
    (fun seed ->
      let wan = Wan.generate ~params:small_params ~seed () in
      Array.length wan.Wan.poc_sites >= 2
      && Paths.is_connected wan.Wan.graph
      && Array.for_all (fun (bp : Wan.bp) -> Array.length bp.Wan.link_ids > 0)
           wan.Wan.bps)

let suite =
  [
    Alcotest.test_case "site generation" `Quick test_site_generation;
    Alcotest.test_case "site zipf ordering" `Quick test_site_zipf_ordering;
    Alcotest.test_case "site distance" `Quick test_site_distance;
    Alcotest.test_case "site bad args" `Quick test_site_bad_args;
    Alcotest.test_case "physical connected" `Quick test_physical_connected;
    Alcotest.test_case "physical path metrics" `Quick test_physical_path_metrics;
    Alcotest.test_case "physical duplicate rejected" `Quick
      test_physical_duplicate_footprint_rejected;
    Alcotest.test_case "wan determinism" `Quick test_wan_determinism;
    Alcotest.test_case "wan link/graph alignment" `Quick test_wan_link_graph_alignment;
    Alcotest.test_case "wan ownership consistency" `Quick test_wan_ownership_consistency;
    Alcotest.test_case "wan shares sum to 1" `Quick test_wan_shares_sum_to_one;
    Alcotest.test_case "wan every bp offers" `Quick test_wan_every_bp_offers;
    Alcotest.test_case "wan offer pool connected" `Quick test_wan_connected;
    Alcotest.test_case "wan colocation threshold" `Quick test_wan_colocation_threshold;
    Alcotest.test_case "wan node/site inverse" `Quick test_wan_node_site_inverse;
    Alcotest.test_case "wan bps_by_size ordering" `Quick test_wan_ordering_by_size;
    Alcotest.test_case "wan link attributes positive" `Quick test_wan_costs_positive;
    Alcotest.test_case "wan bad params" `Quick test_wan_bad_params_rejected;
    QCheck_alcotest.to_alcotest qcheck_wan_seeds_structurally_sane;
    Alcotest.test_case "graphml well-formed" `Quick test_graphml_well_formed;
    Alcotest.test_case "graphml selected attr" `Quick test_graphml_selected_attribute;
    Alcotest.test_case "csv row counts" `Quick test_csv_row_counts;
    Alcotest.test_case "export write_file" `Quick test_export_write_file;
  ]
