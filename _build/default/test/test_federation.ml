(* Tests for Poc_federation: regional partition, per-region auctions,
   interconnect and the fragmentation comparison. *)

module Federation = Poc_federation.Federation
module Vcg = Poc_auction.Vcg
module Wan = Poc_topology.Wan

let plan () = Lazy.force Fixtures.small_plan

let federation = lazy (Federation.build (Lazy.force Fixtures.small_plan) ~regions:2)

let get () =
  match Lazy.force federation with
  | Ok f -> f
  | Error msg -> Alcotest.fail ("federation build failed: " ^ msg)

let test_partition_covers_everything () =
  let wan = (plan ()).Poc_core.Planner.wan in
  let assignment = Federation.partition wan ~regions:3 in
  Alcotest.(check int) "every router assigned"
    (Array.length wan.Wan.poc_sites)
    (Array.length assignment);
  Array.iter
    (fun r -> Alcotest.(check bool) "region in range" true (r >= 0 && r < 3))
    assignment;
  (* Balanced within one router. *)
  let counts = Array.make 3 0 in
  Array.iter (fun r -> counts.(r) <- counts.(r) + 1) assignment;
  let mn = Array.fold_left min counts.(0) counts in
  let mx = Array.fold_left max counts.(0) counts in
  Alcotest.(check bool) "balanced" true (mx - mn <= 1)

let test_partition_validates () =
  let wan = (plan ()).Poc_core.Planner.wan in
  Alcotest.check_raises "zero regions" (Invalid_argument "Federation.partition")
    (fun () -> ignore (Federation.partition wan ~regions:0))

let test_regional_selections_stay_internal () =
  let f = get () in
  let wan = (plan ()).Poc_core.Planner.wan in
  Array.iter
    (fun (poc : Federation.regional_poc) ->
      List.iter
        (fun id ->
          let l = wan.Wan.links.(id) in
          Alcotest.(check int) "endpoint a in region" poc.Federation.region
            f.Federation.assignment.(l.Wan.node_a);
          Alcotest.(check int) "endpoint b in region" poc.Federation.region
            f.Federation.assignment.(l.Wan.node_b))
        poc.Federation.outcome.Vcg.selection.Vcg.selected)
    f.Federation.pocs

let test_federation_carries_all_traffic () =
  let f = get () in
  let total_intra =
    Array.fold_left
      (fun acc (p : Federation.regional_poc) -> acc +. p.Federation.intra_gbps)
      0.0 f.Federation.pocs
  in
  let matrix_total =
    Poc_traffic.Matrix.total (plan ()).Poc_core.Planner.matrix
  in
  Alcotest.(check (float 1e-6)) "intra + inter = matrix"
    matrix_total
    (total_intra +. f.Federation.inter_gbps)

let test_fragmentation_overhead_positive () =
  let f = get () in
  Alcotest.(check bool) "spend positive" true (f.Federation.federation_spend > 0.0);
  (* A federation cannot pool link selection across regions; it should
     not be cheaper than the single POC (up to heuristic noise). *)
  Alcotest.(check bool) "overhead > -5%" true
    (Federation.fragmentation_overhead f > -0.05)

let test_regional_prices_positive () =
  let f = get () in
  Array.iter
    (fun (p : Federation.regional_poc) ->
      if p.Federation.intra_gbps > 0.0 then
        Alcotest.(check bool) "positive price" true (p.Federation.price_per_gbps > 0.0))
    f.Federation.pocs

let test_render () =
  let f = get () in
  let s = Federation.render (plan ()) f in
  Alcotest.(check bool) "has rows" true (String.length s > 0)

let suite =
  [
    Alcotest.test_case "partition covers everything" `Quick
      test_partition_covers_everything;
    Alcotest.test_case "partition validates" `Quick test_partition_validates;
    Alcotest.test_case "regional selections internal" `Quick
      test_regional_selections_stay_internal;
    Alcotest.test_case "carries all traffic" `Quick test_federation_carries_all_traffic;
    Alcotest.test_case "fragmentation overhead" `Quick
      test_fragmentation_overhead_positive;
    Alcotest.test_case "regional prices" `Quick test_regional_prices_positive;
    Alcotest.test_case "render" `Quick test_render;
  ]
