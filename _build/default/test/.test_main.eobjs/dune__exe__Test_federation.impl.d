test/test_federation.ml: Alcotest Array Fixtures Lazy List Poc_auction Poc_core Poc_federation Poc_topology Poc_traffic String
