test/test_auction.ml: Alcotest Array Lazy List Poc_auction Poc_graph Poc_topology Poc_traffic Poc_util Printf QCheck QCheck_alcotest String
