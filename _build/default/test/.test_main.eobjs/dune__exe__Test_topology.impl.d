test/test_topology.ml: Alcotest Array Filename Fun Lazy List Poc_graph Poc_topology Poc_util QCheck QCheck_alcotest String Sys
