test/test_mcf.ml: Alcotest Array Float List Poc_graph Poc_mcf Poc_util QCheck QCheck_alcotest
