test/test_util.ml: Alcotest Array Float Fun Gen List Poc_util QCheck QCheck_alcotest String
