test/test_market.ml: Alcotest Array Fixtures Lazy List Poc_auction Poc_core Poc_market
