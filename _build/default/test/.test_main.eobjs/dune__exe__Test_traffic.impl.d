test/test_traffic.ml: Alcotest Array Float Lazy List Poc_topology Poc_traffic Poc_util QCheck QCheck_alcotest
