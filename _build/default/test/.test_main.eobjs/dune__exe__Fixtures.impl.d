test/fixtures.ml: Poc_core
