test/test_econ.ml: Alcotest Array Float List Poc_econ Poc_util Printf QCheck QCheck_alcotest
