test/test_sim.ml: Alcotest Array Fixtures Lazy List Poc_core Poc_sim Poc_traffic Poc_util QCheck QCheck_alcotest
