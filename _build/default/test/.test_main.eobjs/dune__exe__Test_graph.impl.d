test/test_graph.ml: Alcotest Array Float Fun List Poc_graph Poc_util QCheck QCheck_alcotest
