test/test_core.ml: Alcotest Array Fixtures Float Fun Lazy List Poc_auction Poc_core Poc_graph Poc_mcf Poc_topology Poc_traffic Poc_util Printf QCheck QCheck_alcotest String
