test/test_baseline.ml: Alcotest Array Float Fun Lazy List Poc_baseline Poc_util QCheck QCheck_alcotest String
