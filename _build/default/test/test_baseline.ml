(* Tests for Poc_baseline: AS hierarchy generation, Gao-Rexford BGP
   routing (valley-freeness, preference order) and transit cash flows. *)

module As_graph = Poc_baseline.As_graph
module Bgp = Poc_baseline.Bgp
module Cashflow = Poc_baseline.Cashflow

let graph = lazy (As_graph.generate ~seed:5 ())

(* A hand-built hierarchy where every route is known:

     T1a --peer-- T1b
      |            |
     TrA          TrB        (customers of T1a / T1b)
      |  \        |
     Ea   Cb     Eb          (stubs; Cb multihomes to TrA and TrB)   *)
let tiny () =
  let kinds =
    [| As_graph.Tier1; As_graph.Tier1; As_graph.Transit; As_graph.Transit;
       As_graph.Eyeball_stub; As_graph.Content_stub; As_graph.Eyeball_stub |]
  in
  let names = Array.map As_graph.kind_name kinds in
  let links =
    [|
      { As_graph.a = 0; b = 1; rel = As_graph.Peer_peer };
      { As_graph.a = 2; b = 0; rel = As_graph.Customer_provider };
      { As_graph.a = 3; b = 1; rel = As_graph.Customer_provider };
      { As_graph.a = 4; b = 2; rel = As_graph.Customer_provider };
      { As_graph.a = 5; b = 2; rel = As_graph.Customer_provider };
      { As_graph.a = 5; b = 3; rel = As_graph.Customer_provider };
      { As_graph.a = 6; b = 3; rel = As_graph.Customer_provider };
    |]
  in
  let n = Array.length kinds in
  let providers = Array.make n [] in
  let customers = Array.make n [] in
  let peers = Array.make n [] in
  Array.iter
    (fun (l : As_graph.link) ->
      match l.As_graph.rel with
      | As_graph.Customer_provider ->
        providers.(l.As_graph.a) <- l.As_graph.b :: providers.(l.As_graph.a);
        customers.(l.As_graph.b) <- l.As_graph.a :: customers.(l.As_graph.b)
      | As_graph.Peer_peer ->
        peers.(l.As_graph.a) <- l.As_graph.b :: peers.(l.As_graph.a);
        peers.(l.As_graph.b) <- l.As_graph.a :: peers.(l.As_graph.b))
    links;
  { As_graph.kinds; names; links; providers; customers; peers }

let test_generated_validates () =
  match As_graph.validate (Lazy.force graph) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_tiny_validates () =
  match As_graph.validate (tiny ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_stub_classification () =
  let g = Lazy.force graph in
  let stubs = As_graph.stubs g in
  Alcotest.(check int) "30 eyeballs + 10 content" 40 (List.length stubs);
  List.iter
    (fun s -> Alcotest.(check bool) "is_stub" true (As_graph.is_stub g s))
    stubs

(* --- BGP ------------------------------------------------------------------- *)

let test_customer_route_preferred () =
  let g = tiny () in
  (* From TrA (2) to Ea (4): customer route, one hop. *)
  let table = Bgp.routes_to g 4 in
  match table.(2) with
  | Some r ->
    Alcotest.(check bool) "via customer" true (r.Bgp.kind = Bgp.Via_customer);
    Alcotest.(check int) "one hop" 1 r.Bgp.as_path_len
  | None -> Alcotest.fail "route must exist"

let test_peer_route_used_across_tier1 () =
  let g = tiny () in
  (* Ea (4) to Eb (6): up to TrA, T1a, peer to T1b, down TrB, Eb. *)
  match Bgp.as_path g ~src:4 ~dst:6 with
  | None -> Alcotest.fail "must be reachable"
  | Some path ->
    Alcotest.(check (list int)) "the valley-free path" [ 4; 2; 0; 1; 3; 6 ] path;
    Alcotest.(check bool) "valley free" true (Bgp.valley_free g path)

let test_multihomed_stub_shortcut () =
  let g = tiny () in
  (* Cb (5) reaches Eb (6) via TrB (3) directly: 5-3-6. *)
  match Bgp.as_path g ~src:5 ~dst:6 with
  | None -> Alcotest.fail "must be reachable"
  | Some path -> Alcotest.(check (list int)) "short branch" [ 5; 3; 6 ] path

let test_no_transit_through_stub () =
  let g = tiny () in
  (* Ea (4) to Cb (5): must go 4-2-5, never through another stub. *)
  match Bgp.as_path g ~src:4 ~dst:5 with
  | None -> Alcotest.fail "must be reachable"
  | Some path ->
    Alcotest.(check (list int)) "via shared transit" [ 4; 2; 5 ] path

let test_full_reachability_tiny () =
  let g = tiny () in
  Alcotest.(check int) "all ordered pairs reachable" (7 * 6)
    (Bgp.reachable_pairs g)

let test_valley_free_rejects_valleys () =
  let g = tiny () in
  (* 2-5-3: down to a stub then up again — a valley. *)
  Alcotest.(check bool) "valley rejected" false (Bgp.valley_free g [ 2; 5; 3 ]);
  (* 0-1 then 1-0 peer twice is also invalid. *)
  Alcotest.(check bool) "double peer rejected" false (Bgp.valley_free g [ 2; 0; 1; 0 ])

let qcheck_generated_paths_valley_free =
  QCheck.Test.make ~name:"all BGP paths valley-free (random hierarchies)"
    ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = As_graph.generate ~seed () in
      let n = As_graph.size g in
      let ok = ref true in
      for dst = 0 to min (n - 1) 15 do
        for src = 0 to n - 1 do
          if src <> dst then begin
            match Bgp.as_path g ~src ~dst with
            | None -> ()
            | Some path -> if not (Bgp.valley_free g path) then ok := false
          end
        done
      done;
      !ok)

let qcheck_high_reachability =
  QCheck.Test.make ~name:"generated hierarchies are mostly reachable" ~count:8
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = As_graph.generate ~seed () in
      let n = As_graph.size g in
      Bgp.reachable_pairs g = n * (n - 1))

(* --- Cashflow ------------------------------------------------------------------ *)

let params g =
  {
    Cashflow.transit_price = Cashflow.default_transit_price g;
    termination_fee = 0.0;
  }

let test_cashflow_conservation () =
  let g = tiny () in
  let report =
    Cashflow.settle g (params g) ~demands:[ (5, 4, 10.0); (5, 6, 4.0); (4, 6, 1.0) ]
  in
  Alcotest.(check (float 1e-6)) "money conserved" 0.0
    (Cashflow.conservation_check report);
  Alcotest.(check (float 1e-6)) "all delivered" 15.0 report.Cashflow.total_volume;
  Alcotest.(check bool) "no undelivered" true (report.Cashflow.undelivered = [])

let test_cashflow_stub_pays_up () =
  let g = tiny () in
  (* Cb (5) to Ea (4) rides 5-2-4: Cb pays TrA; Ea also pays TrA for
     the descent. Tier1s see nothing. *)
  let report = Cashflow.settle g (params g) ~demands:[ (5, 4, 10.0) ] in
  Alcotest.(check bool) "content stub pays" true (report.Cashflow.net.(5) < 0.0);
  Alcotest.(check bool) "eyeball pays too" true (report.Cashflow.net.(4) < 0.0);
  Alcotest.(check bool) "transit profits" true (report.Cashflow.net.(2) > 0.0);
  Alcotest.(check (float 1e-6)) "tier1 uninvolved" 0.0 report.Cashflow.net.(0)

let test_termination_fee_flows () =
  let g = tiny () in
  let base = Cashflow.settle g (params g) ~demands:[ (5, 4, 10.0) ] in
  let fee_params = { (params g) with Cashflow.termination_fee = 7.0 } in
  let report = Cashflow.settle g fee_params ~demands:[ (5, 4, 10.0) ] in
  Alcotest.(check (float 1e-6)) "content pays 70 more"
    (base.Cashflow.net.(5) -. 70.0)
    report.Cashflow.net.(5);
  Alcotest.(check (float 1e-6)) "eyeball collects 70"
    (base.Cashflow.net.(4) +. 70.0)
    report.Cashflow.net.(4)

let test_termination_fee_only_content_to_eyeball () =
  let g = tiny () in
  let fee_params = { (params g) with Cashflow.termination_fee = 7.0 } in
  (* Eyeball-to-eyeball traffic never pays termination. *)
  let report = Cashflow.settle g fee_params ~demands:[ (4, 6, 10.0) ] in
  let has_termination =
    List.exists
      (fun (t : Cashflow.transfer) ->
        String.length t.Cashflow.reason >= 11
        && String.sub t.Cashflow.reason 0 11 = "termination")
      report.Cashflow.transfers
  in
  Alcotest.(check bool) "no termination entry" false has_termination

let test_peering_settlement_free () =
  let g = tiny () in
  (* Ea->Eb crosses the T1a-T1b peering: no money moves between them. *)
  let report = Cashflow.settle g (params g) ~demands:[ (4, 6, 2.0) ] in
  let t1_pair_transfers =
    List.filter
      (fun (t : Cashflow.transfer) ->
        (t.Cashflow.payer = 0 && t.Cashflow.payee = 1)
        || (t.Cashflow.payer = 1 && t.Cashflow.payee = 0))
      report.Cashflow.transfers
  in
  Alcotest.(check int) "settlement-free peering" 0 (List.length t1_pair_transfers)

let test_settle_validates_demands () =
  let g = tiny () in
  Alcotest.check_raises "self demand"
    (Invalid_argument "Cashflow.settle: self demand") (fun () ->
      ignore (Cashflow.settle g (params g) ~demands:[ (4, 4, 1.0) ]))

let qcheck_cashflow_conserved_random =
  QCheck.Test.make ~name:"cash conservation on random hierarchies" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = As_graph.generate ~seed () in
      let stubs = Array.of_list (As_graph.stubs g) in
      let rng = Poc_util.Prng.create seed in
      let demands =
        List.init 20 (fun _ ->
            let a = Poc_util.Prng.pick rng stubs in
            let b = Poc_util.Prng.pick rng stubs in
            if a = b then None else Some (a, b, 1.0 +. Poc_util.Prng.float rng))
        |> List.filter_map Fun.id
      in
      let report = Cashflow.settle g (params g) ~demands in
      Float.abs (Cashflow.conservation_check report) < 1e-6)


(* --- POC as an AS (incremental deployability) ------------------------------------ *)

module Poc_as = Poc_baseline.Poc_as

let test_poc_integration_valid () =
  let g = Lazy.force graph in
  let i = Poc_as.integrate ~seed:2 g in
  (match As_graph.validate i.Poc_as.graph with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "one new AS" (As_graph.size g + 1)
    (As_graph.size i.Poc_as.graph);
  Alcotest.(check bool) "all stubs attached by default" true
    (List.length i.Poc_as.attached_stubs = List.length (As_graph.stubs g));
  (* Original graph untouched. *)
  match As_graph.validate g with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("original mutated: " ^ msg)

let test_poc_captures_traffic () =
  let g = Lazy.force graph in
  let i = Poc_as.integrate ~seed:2 g in
  let stubs = Array.of_list (As_graph.stubs g) in
  let rng = Poc_util.Prng.create 9 in
  let demands =
    List.init 30 (fun _ ->
        let rec pick () =
          let a = Poc_util.Prng.pick rng stubs in
          let b = Poc_util.Prng.pick rng stubs in
          if a = b then pick () else (a, b, 2.0)
        in
        pick ())
  in
  let c =
    Poc_as.measure g i ~demands ~poc_price:250.0
      ~incumbent_price:(Cashflow.default_transit_price g)
  in
  (* Everyone multihomed to a cheap 2-hop transit: it wins every pair
     that does not already share an incumbent transit (ties break to
     the lower AS id, i.e. the incumbent — existing relationships are
     sticky). *)
  Alcotest.(check bool) "captures most traffic" true (c.Poc_as.capture_fraction > 0.5);
  Alcotest.(check bool) "stubs save money" true
    (c.Poc_as.stub_outlay_after < c.Poc_as.stub_outlay_before);
  Alcotest.(check bool) "savings fraction consistent" true
    (c.Poc_as.savings_fraction > 0.0 && c.Poc_as.savings_fraction <= 1.0)

let test_poc_partial_attachment () =
  let g = Lazy.force graph in
  let i = Poc_as.integrate ~attach_fraction:0.3 ~seed:2 g in
  let attached = List.length i.Poc_as.attached_stubs in
  let total = List.length (As_graph.stubs g) in
  Alcotest.(check bool) "partial attachment" true
    (attached > 0 && attached < total);
  match As_graph.validate i.Poc_as.graph with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let suite =
  [
    Alcotest.test_case "generated hierarchy validates" `Quick test_generated_validates;
    Alcotest.test_case "tiny hierarchy validates" `Quick test_tiny_validates;
    Alcotest.test_case "stub classification" `Quick test_stub_classification;
    Alcotest.test_case "customer route preferred" `Quick test_customer_route_preferred;
    Alcotest.test_case "peer route across tier1" `Quick test_peer_route_used_across_tier1;
    Alcotest.test_case "multihomed stub shortcut" `Quick test_multihomed_stub_shortcut;
    Alcotest.test_case "no transit through stubs" `Quick test_no_transit_through_stub;
    Alcotest.test_case "tiny fully reachable" `Quick test_full_reachability_tiny;
    Alcotest.test_case "valley detector" `Quick test_valley_free_rejects_valleys;
    QCheck_alcotest.to_alcotest qcheck_generated_paths_valley_free;
    QCheck_alcotest.to_alcotest qcheck_high_reachability;
    Alcotest.test_case "cashflow conservation" `Quick test_cashflow_conservation;
    Alcotest.test_case "stub pays its provider" `Quick test_cashflow_stub_pays_up;
    Alcotest.test_case "termination fee flows" `Quick test_termination_fee_flows;
    Alcotest.test_case "termination only content->eyeball" `Quick
      test_termination_fee_only_content_to_eyeball;
    Alcotest.test_case "peering settlement-free" `Quick test_peering_settlement_free;
    Alcotest.test_case "settle validates demands" `Quick test_settle_validates_demands;
    QCheck_alcotest.to_alcotest qcheck_cashflow_conserved_random;
    Alcotest.test_case "poc integration valid" `Quick test_poc_integration_valid;
    Alcotest.test_case "poc captures traffic" `Quick test_poc_captures_traffic;
    Alcotest.test_case "poc partial attachment" `Quick test_poc_partial_attachment;
  ]
