(** Glue from the generated WAN to an auction problem. *)

val truthful_bids : ?margin:float -> Poc_topology.Wan.t -> Bid.t array
(** One additive bid per BP at its private link cost times
    [1 + margin] (default margin 0: fully truthful). *)

val virtual_prices : Poc_topology.Wan.t -> (int * float) list
(** The external ISPs' contracted virtual-link prices. *)

val problem :
  ?margin:float ->
  Poc_topology.Wan.t ->
  Poc_traffic.Matrix.t ->
  rule:Acceptability.t ->
  Vcg.problem
(** Assembles the full Figure 2 auction problem: graph, undirected
    pair demands from the traffic matrix, truthful bids, contracted
    virtual links, and the acceptability rule. *)
