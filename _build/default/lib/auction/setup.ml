module Wan = Poc_topology.Wan
module Matrix = Poc_traffic.Matrix

let truthful_bids ?(margin = 0.0) (wan : Wan.t) =
  if margin < 0.0 then invalid_arg "Setup.truthful_bids: negative margin";
  Array.map
    (fun (bp : Wan.bp) ->
      let prices =
        Array.to_list bp.link_ids
        |> List.map (fun id ->
               (id, wan.links.(id).Wan.true_cost *. (1.0 +. margin)))
      in
      Bid.additive prices)
    wan.bps

let virtual_prices (wan : Wan.t) =
  Wan.virtual_link_ids wan
  |> List.map (fun id -> (id, wan.links.(id).Wan.true_cost))

let problem ?margin (wan : Wan.t) matrix ~rule =
  {
    Vcg.graph = wan.graph;
    demands = Matrix.undirected_pair_demands matrix;
    bids = truthful_bids ?margin wan;
    virtual_prices = virtual_prices wan;
    rule;
  }
