lib/auction/bid.mli:
