lib/auction/vcg.mli: Acceptability Bid Poc_graph Poc_mcf
