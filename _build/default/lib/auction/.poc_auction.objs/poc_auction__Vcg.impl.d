lib/auction/vcg.ml: Acceptability Array Bid Float Fun Hashtbl List Logs Option Poc_graph Poc_mcf
