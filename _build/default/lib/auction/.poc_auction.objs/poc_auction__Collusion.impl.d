lib/auction/collusion.ml: Array Bid Fun Hashtbl List Vcg
