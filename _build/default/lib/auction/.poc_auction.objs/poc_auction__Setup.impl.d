lib/auction/setup.ml: Array Bid List Poc_topology Poc_traffic Vcg
