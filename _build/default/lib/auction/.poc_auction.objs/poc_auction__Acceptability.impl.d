lib/auction/acceptability.ml: Array Hashtbl List Poc_graph Poc_mcf
