lib/auction/setup.mli: Acceptability Bid Poc_topology Poc_traffic Vcg
