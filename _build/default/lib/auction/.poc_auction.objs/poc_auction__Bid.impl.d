lib/auction/bid.ml: Float Hashtbl List
