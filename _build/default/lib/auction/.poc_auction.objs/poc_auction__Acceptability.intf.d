lib/auction/acceptability.mli: Poc_graph Poc_mcf
