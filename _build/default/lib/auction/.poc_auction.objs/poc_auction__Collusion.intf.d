lib/auction/collusion.mli: Vcg
