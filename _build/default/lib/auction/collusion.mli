(** Link-withholding experiments (Section 3.3's collusion discussion).

    "If the BPs can guess in advance what the set SL is, they can
    decide to not offer any links not in this set without changing
    their own payoff, but possibly changing that of others."  This
    module measures exactly that: BP β withdraws Lβ − SL and we rerun
    the mechanism, reporting everyone's payment deltas. *)

type report = {
  withholder : int;
  withheld_links : int list;
  payment_before : float array; (** per BP, indexed by BP id *)
  payment_after : float array;
  selection_changed : bool;
}

val withhold_unselected : Vcg.problem -> Vcg.outcome -> bp:int -> report option
(** [withhold_unselected problem outcome ~bp] reruns the auction with
    [bp]'s unselected links withdrawn.  [None] if the reduced offer
    set admits no acceptable selection.  When the withholder guessed
    SL correctly (i.e. the selection is unchanged) the paper predicts
    [payment_after.(bp) = payment_before.(bp)] and
    [payment_after.(i) >= payment_before.(i)] for others. *)

val all_withhold_unselected :
  Vcg.problem -> Vcg.outcome -> report option
(** Every BP simultaneously withholds its unselected links (the
    coordinated variant the paper says can make them all gain). *)
