type report = {
  withholder : int;
  withheld_links : int list;
  payment_before : float array;
  payment_after : float array;
  selection_changed : bool;
}

let payments_of (outcome : Vcg.outcome) =
  Array.map (fun (r : Vcg.bp_result) -> r.payment) outcome.bp_results

(* Withholding is expressed by shrinking the withholders' bids: the
   links simply are not offered, and the standard mechanism (with its
   warm-started pivots) runs on the reduced problem. *)
let restrict_bid bid withheld =
  let keep = List.filter (fun id -> not (Hashtbl.mem withheld id)) (Bid.links bid) in
  Bid.additive (List.map (fun id -> (id, Bid.single_price bid id)) keep)

let rerun_with_withheld (problem : Vcg.problem) (outcome : Vcg.outcome) withheld =
  let tbl = Hashtbl.create (List.length withheld) in
  List.iter (fun id -> Hashtbl.replace tbl id ()) withheld;
  let bids = Array.map (fun bid -> restrict_bid bid tbl) problem.Vcg.bids in
  match Vcg.run { problem with Vcg.bids } with
  | None -> None
  | Some after ->
    let selection_changed =
      after.Vcg.selection.Vcg.selected <> outcome.Vcg.selection.Vcg.selected
    in
    Some (payments_of after, selection_changed)

let unselected_links (problem : Vcg.problem) (outcome : Vcg.outcome) bp =
  let in_sl = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_sl id ()) outcome.Vcg.selection.Vcg.selected;
  Bid.links problem.Vcg.bids.(bp)
  |> List.filter (fun id -> not (Hashtbl.mem in_sl id))

let withhold_unselected problem outcome ~bp =
  if bp < 0 || bp >= Array.length problem.Vcg.bids then
    invalid_arg "Collusion.withhold_unselected: unknown BP";
  let withheld = unselected_links problem outcome bp in
  match rerun_with_withheld problem outcome withheld with
  | None -> None
  | Some (payment_after, selection_changed) ->
    Some
      {
        withholder = bp;
        withheld_links = withheld;
        payment_before = payments_of outcome;
        payment_after;
        selection_changed;
      }

let all_withhold_unselected problem outcome =
  let n = Array.length problem.Vcg.bids in
  let withheld =
    List.concat_map (fun bp -> unselected_links problem outcome bp)
      (List.init n Fun.id)
  in
  match rerun_with_withheld problem outcome withheld with
  | None -> None
  | Some (payment_after, selection_changed) ->
    Some
      {
        withholder = -1;
        withheld_links = withheld;
        payment_before = payments_of outcome;
        payment_after;
        selection_changed;
      }
