(** Maximum flow on the capacitated (sub)graph.

    Used for capacity sanity checks in planning (is there enough raw
    capacity between two attachment points?) and in tests (max-flow =
    min-cut as a property check).  Undirected edges may carry up to
    their capacity in either direction. *)

type result = {
  value : float;            (** max s-t flow value *)
  cut_edges : int list;     (** edge ids forming a minimum s-t cut *)
  source_side : bool array; (** node partition: true = source side *)
}

val max_flow :
  ?enabled:(int -> bool) -> Graph.t -> Graph.node -> Graph.node -> result
(** [max_flow g s t] by Edmonds-Karp.  Requires [s <> t]. *)

val cut_capacity : Graph.t -> int list -> float
(** Total capacity of a set of edge ids. *)
