(** Minimal binary min-heap keyed by floats, used by the path algorithms. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h key v] inserts [v] with priority [key]. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-key entry. *)
