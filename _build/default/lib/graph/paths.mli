(** Shortest paths and connectivity over (sub)graphs.

    Every function takes an optional [enabled] predicate over edge ids;
    disabled edges are treated as absent.  This is how the auction
    evaluates candidate link subsets and how failure scenarios are
    expressed. *)

type path = Graph.edge list
(** Edges in order from source to destination; empty for src = dst. *)

val path_weight : path -> float
(** Sum of edge weights. *)

val path_nodes : src:Graph.node -> path -> Graph.node list
(** Node sequence visited, starting at [src]. *)

val dijkstra :
  ?enabled:(int -> bool) -> Graph.t -> Graph.node ->
  float array * int option array
(** [dijkstra g src] is [(dist, pred)] where [dist.(v)] is the shortest
    weighted distance from [src] ([infinity] if unreachable) and
    [pred.(v)] the id of the edge used to reach [v]. *)

val shortest_path :
  ?enabled:(int -> bool) -> Graph.t -> Graph.node -> Graph.node -> path option
(** Minimum-weight path, [None] when disconnected. *)

val hop_distance :
  ?enabled:(int -> bool) -> Graph.t -> Graph.node -> Graph.node -> int option
(** BFS hop count. *)

val connected :
  ?enabled:(int -> bool) -> Graph.t -> Graph.node -> Graph.node -> bool

val components : ?enabled:(int -> bool) -> Graph.t -> int array
(** [components g] labels every node with a component index. *)

val component_count : ?enabled:(int -> bool) -> Graph.t -> int

val is_connected : ?enabled:(int -> bool) -> Graph.t -> bool
(** True when the whole node set is one component (trivially true for
    graphs with fewer than two nodes). *)

val k_shortest_paths :
  ?enabled:(int -> bool) -> Graph.t -> Graph.node -> Graph.node -> int ->
  path list
(** Yen's algorithm: up to [k] loopless paths in nondecreasing weight
    order. *)

val bridges : ?enabled:(int -> bool) -> Graph.t -> int list
(** Edge ids whose removal increases the number of components. *)
