type result = {
  value : float;
  cut_edges : int list;
  source_side : bool array;
}

type arc = {
  dst : int;
  edge_id : int;
  mutable residual : float;
  mutable rev : int; (* index of the reverse arc in the flat arc array *)
}

let always_enabled _ = true

let max_flow ?(enabled = always_enabled) g s t =
  if s = t then invalid_arg "Flow.max_flow: source equals sink";
  let n = Graph.node_count g in
  let adjacency = Array.make n [] in
  let arcs = ref [] in
  let arc_count = ref 0 in
  let add_arc src dst edge_id cap =
    let a = { dst; edge_id; residual = cap; rev = 0 } in
    arcs := a :: !arcs;
    adjacency.(src) <- !arc_count :: adjacency.(src);
    incr arc_count;
    !arc_count - 1
  in
  Array.iter
    (fun (e : Graph.edge) ->
      if enabled e.id then begin
        (* Undirected edge: both directions get full capacity and each
           arc is the other's reverse. *)
        let a = add_arc e.u e.v e.id e.capacity in
        let b = add_arc e.v e.u e.id e.capacity in
        ignore a;
        ignore b
      end)
    (Graph.edges g);
  let arcs = Array.of_list (List.rev !arcs) in
  (* Fix up reverse pointers: arcs were added in pairs. *)
  let i = ref 0 in
  while !i + 1 < Array.length arcs do
    arcs.(!i).rev <- !i + 1;
    arcs.(!i + 1).rev <- !i;
    i := !i + 2
  done;
  let total = ref 0.0 in
  let parent_arc = Array.make n (-1) in
  let rec bfs_augment () =
    Array.fill parent_arc 0 n (-1);
    let queue = Queue.create () in
    Queue.push s queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let try_arc ai =
        let a = arcs.(ai) in
        if a.residual > 1e-12 && a.dst <> s && parent_arc.(a.dst) < 0 then begin
          parent_arc.(a.dst) <- ai;
          if a.dst = t then found := true else Queue.push a.dst queue
        end
      in
      List.iter try_arc adjacency.(u)
    done;
    if !found then begin
      (* Find bottleneck along the path, then augment. *)
      let rec bottleneck node acc =
        if node = s then acc
        else begin
          let ai = parent_arc.(node) in
          let a = arcs.(ai) in
          let src = arcs.(a.rev).dst in
          bottleneck src (Float.min acc a.residual)
        end
      in
      let delta = bottleneck t infinity in
      let rec apply node =
        if node <> s then begin
          let ai = parent_arc.(node) in
          let a = arcs.(ai) in
          a.residual <- a.residual -. delta;
          arcs.(a.rev).residual <- arcs.(a.rev).residual +. delta;
          apply arcs.(a.rev).dst
        end
      in
      apply t;
      total := !total +. delta;
      bfs_augment ()
    end
  in
  bfs_augment ();
  (* Residual reachability from s gives the min cut. *)
  let source_side = Array.make n false in
  let queue = Queue.create () in
  source_side.(s) <- true;
  Queue.push s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let visit ai =
      let a = arcs.(ai) in
      if a.residual > 1e-12 && not source_side.(a.dst) then begin
        source_side.(a.dst) <- true;
        Queue.push a.dst queue
      end
    in
    List.iter visit adjacency.(u)
  done;
  let cut_edges =
    Graph.fold_edges
      (fun e acc ->
        if enabled e.id && source_side.(e.u) <> source_side.(e.v) then e.id :: acc
        else acc)
      g []
    |> List.sort compare
  in
  { value = !total; cut_edges; source_side }

let cut_capacity g ids =
  List.fold_left (fun acc id -> acc +. (Graph.edge g id).capacity) 0.0 ids
