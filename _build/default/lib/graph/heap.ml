type 'a entry = { key : float; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let is_empty h = h.len = 0

let size h = h.len

let grow h entry =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let ndata = Array.make ncap entry in
    Array.blit h.data 0 ndata 0 h.len;
    h.data <- ndata
  end

let push h key value =
  let entry = { key; value } in
  grow h entry;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  (* Sift up. *)
  let i = ref (h.len - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if h.data.(parent).key > h.data.(!i).key then begin
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && h.data.(l).key < h.data.(!smallest).key then smallest := l;
        if r < h.len && h.data.(r).key < h.data.(!smallest).key then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.key, top.value)
  end
