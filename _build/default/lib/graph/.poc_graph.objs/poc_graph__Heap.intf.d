lib/graph/heap.mli:
