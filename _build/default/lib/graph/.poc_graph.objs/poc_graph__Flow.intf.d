lib/graph/flow.mli: Graph
