lib/graph/paths.ml: Array Graph Hashtbl Heap List Queue
