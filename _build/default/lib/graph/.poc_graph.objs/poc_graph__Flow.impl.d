lib/graph/flow.ml: Array Float Graph List Queue
