(** Consumer demand for CSP services (Section 4.2).

    A unit mass of consumers attaches value [v] to a service, with
    cumulative distribution F; a consumer buys when [v >= p], so the
    demand at price [p] is [D(p) = 1 - F(p)].  We provide the
    parametric families used across the experiments:

    - {e Uniform} on [\[0, vmax\]]: the textbook linear demand.
    - {e Exponential}: [D(p) = exp(-p/mean)] — smooth, strictly convex,
      satisfies every hypothesis of Lemma 1.
    - {e Lomax} (Pareto type II): heavy-tailed willingness to pay,
      [D(p) = (1 + p/scale)^-alpha]; Lemma 1 hypotheses hold and the
      monopoly problem is well-posed for [alpha > 1].
    - {e Kinked}: piecewise-linear demand with a kink, for stress
      tests (violates smoothness, monotonicity results still hold
      empirically). *)

type t =
  | Uniform of float      (** vmax > 0 *)
  | Exponential of float  (** mean willingness to pay > 0 *)
  | Lomax of float * float(** (alpha > 1, scale > 0) *)
  | Kinked of float * float
      (** [Kinked (vmax, knee)]: demand falls fast to the knee, slow
          after; requires [0 < knee < vmax]. *)

val demand : t -> float -> float
(** [demand t p] = D(p) in [\[0, 1\]]; 1 for [p <= 0]. *)

val survival_integral : t -> float -> float
(** [survival_integral t p] = ∫ₚ^∞ D(v) dv — the consumer surplus at
    price [p] (closed form where available). *)

val quantile : t -> float -> float
(** [quantile t q] is the price at which demand has fallen to [q]
    (used to bound numerical searches). Requires [0 < q <= 1]. *)

val mean_value : t -> float
(** Expected willingness to pay, ∫₀^∞ D(v) dv. *)

val validate : t -> (unit, string) result

val name : t -> string

val all_families : t list
(** One representative of each family, normalized to mean willingness
    to pay 10 (handy for sweeps over families). *)
