type t =
  | Uniform of float
  | Exponential of float
  | Lomax of float * float
  | Kinked of float * float

let kink_level = 0.3 (* demand remaining at the knee of a Kinked family *)

let validate = function
  | Uniform vmax ->
    if vmax > 0.0 then Ok () else Error "Uniform: vmax must be positive"
  | Exponential mean ->
    if mean > 0.0 then Ok () else Error "Exponential: mean must be positive"
  | Lomax (alpha, scale) ->
    if alpha <= 1.0 then Error "Lomax: alpha must exceed 1"
    else if scale <= 0.0 then Error "Lomax: scale must be positive"
    else Ok ()
  | Kinked (vmax, knee) ->
    if knee <= 0.0 || knee >= vmax then Error "Kinked: need 0 < knee < vmax"
    else Ok ()

let check t =
  match validate t with Ok () -> () | Error msg -> invalid_arg ("Demand: " ^ msg)

let demand t p =
  check t;
  if p <= 0.0 then 1.0
  else begin
    match t with
    | Uniform vmax -> Float.max 0.0 (1.0 -. (p /. vmax))
    | Exponential mean -> exp (-.p /. mean)
    | Lomax (alpha, scale) -> (1.0 +. (p /. scale)) ** -.alpha
    | Kinked (vmax, knee) ->
      if p >= vmax then 0.0
      else if p <= knee then 1.0 -. ((1.0 -. kink_level) *. p /. knee)
      else kink_level *. (vmax -. p) /. (vmax -. knee)
  end

let survival_integral t p =
  check t;
  let p = Float.max 0.0 p in
  match t with
  | Uniform vmax ->
    if p >= vmax then 0.0 else (vmax -. p) *. (vmax -. p) /. (2.0 *. vmax)
  | Exponential mean -> mean *. exp (-.p /. mean)
  | Lomax (alpha, scale) ->
    scale /. (alpha -. 1.0) *. ((1.0 +. (p /. scale)) ** (1.0 -. alpha))
  | Kinked (vmax, knee) ->
    (* Triangle/trapezoid areas under the piecewise-linear demand. *)
    let tail_from q =
      (* area on [q, vmax] of the low segment, q >= knee *)
      if q >= vmax then 0.0
      else begin
        let d = kink_level *. (vmax -. q) /. (vmax -. knee) in
        d *. (vmax -. q) /. 2.0
      end
    in
    if p >= knee then tail_from p
    else begin
      let d_p = 1.0 -. ((1.0 -. kink_level) *. p /. knee) in
      let upper_trapezoid = (d_p +. kink_level) *. (knee -. p) /. 2.0 in
      upper_trapezoid +. tail_from knee
    end

let quantile t q =
  check t;
  if q <= 0.0 || q > 1.0 then invalid_arg "Demand.quantile: q out of (0,1]";
  match t with
  | Uniform vmax -> vmax *. (1.0 -. q)
  | Exponential mean -> -.mean *. log q
  | Lomax (alpha, scale) -> scale *. ((q ** (-1.0 /. alpha)) -. 1.0)
  | Kinked (vmax, knee) ->
    if q >= kink_level then knee *. (1.0 -. q) /. (1.0 -. kink_level)
    else vmax -. (q *. (vmax -. knee) /. kink_level)

let mean_value t = survival_integral t 0.0

let name = function
  | Uniform vmax -> Printf.sprintf "uniform(vmax=%g)" vmax
  | Exponential mean -> Printf.sprintf "exponential(mean=%g)" mean
  | Lomax (alpha, scale) -> Printf.sprintf "lomax(alpha=%g,scale=%g)" alpha scale
  | Kinked (vmax, knee) -> Printf.sprintf "kinked(vmax=%g,knee=%g)" vmax knee

let all_families =
  [
    Uniform 20.0;
    Exponential 10.0;
    Lomax (2.5, 15.0);
    Kinked (25.0, 12.5);
  ]
