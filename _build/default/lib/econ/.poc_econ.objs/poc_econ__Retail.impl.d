lib/econ/retail.ml: Float List Poc_util
