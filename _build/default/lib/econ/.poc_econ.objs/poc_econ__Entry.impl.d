lib/econ/entry.ml:
