lib/econ/pricing.ml: Demand Float Poc_util
