lib/econ/equilibrium.ml: Bargaining Float List Poc_util Pricing
