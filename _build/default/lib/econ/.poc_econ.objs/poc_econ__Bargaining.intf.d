lib/econ/bargaining.mli: Demand
