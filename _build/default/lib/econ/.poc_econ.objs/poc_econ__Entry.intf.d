lib/econ/entry.mli:
