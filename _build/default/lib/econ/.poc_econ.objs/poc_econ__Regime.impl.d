lib/econ/regime.ml: Array Bargaining Demand Equilibrium Float List Pricing Welfare
