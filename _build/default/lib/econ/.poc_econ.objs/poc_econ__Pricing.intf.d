lib/econ/pricing.mli: Demand
