lib/econ/equilibrium.mli: Bargaining Demand
