lib/econ/regime.mli: Demand
