lib/econ/welfare.mli: Demand
