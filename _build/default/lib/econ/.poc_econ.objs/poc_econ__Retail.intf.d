lib/econ/retail.mli:
