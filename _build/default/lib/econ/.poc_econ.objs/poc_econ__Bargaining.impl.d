lib/econ/bargaining.ml: Demand List
