lib/econ/demand.mli:
