lib/econ/welfare.ml: Demand Float
