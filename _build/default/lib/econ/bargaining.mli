(** Nash-bargained termination fees (Section 4.5).

    A CSP s and LMP l bargain over the fee tₛ.  On agreement s earns
    Dₛ(pₛ)(pₛ − tₛ) and l earns Dₛ(pₛ)tₛ from these customers; on
    disagreement s earns nothing from l's customers and l loses the
    fraction r of its customers (paying access charge c) who leave
    when s is unavailable.  The Nash bargaining solution maximizes the
    product of gains from agreement, giving

        tₛ = (pₛ − r·c) / 2.

    The fee falls as churn r rises — big incumbents (low churn) extract
    more, popular CSPs (high churn) pay less, which is the paper's
    incumbent-advantage result. *)

val bilateral_fee : price:float -> churn:float -> access_price:float -> float
(** The raw NBS fee (pₛ − r·c)/2; may be negative (LMP pays the CSP)
    when the LMP's disagreement loss dominates.  Requires
    [0 <= churn <= 1], [price >= 0], [access_price >= 0]. *)

val nash_product :
  demand:Demand.t -> price:float -> churn:float -> access_price:float ->
  fee:float -> float
(** The objective the NBS maximizes (for tests):
    [D(p)(p − t)] · [D(p)(t + r·c)]. *)

type lmp = { subscribers : float; access_price : float; churn : float }
(** One LMP bargaining with a given CSP: [subscribers] is nₗ, [churn]
    the rate rₗˢ at which its customers defect when the CSP is dropped. *)

val average_fee : price:float -> lmp list -> float
(** The population-weighted average fee t̄ = (p − ⟨rc⟩)/2 with
    ⟨rc⟩ = Σ nₗ rₗ cₗ / Σ nₗ (the paper's second bargaining model). *)

val per_lmp_fees : price:float -> lmp list -> float list
(** Each LMP's bilateral fee at the given price. *)
