(** Side-by-side evaluation of the NN and UR regimes (Section 4).

    An economy is a set of CSPs (independent goods, one demand family
    each) and LMPs (static customer partitions).  We evaluate three
    regimes:

    - {e NN}: network neutrality — no termination fees; every CSP
      posts its monopoly price.
    - {e UR unilateral}: every LMP unilaterally sets the
      double-marginalization fee t* (Section 4.4); fees are uniform
      across LMPs because they all solve the same program.
    - {e UR bargained}: fees follow the Nash-bargaining renegotiation
      equilibrium (Section 4.5); each LMP's fee depends on its churn,
      so incumbents (low churn) extract more.

    Churn is derived as rₗˢ = popularityₛ · (1 − loyaltyₗ): dropping a
    popular CSP costs an LMP more customers, and loyal (incumbent)
    customer bases defect less. *)

type csp = {
  csp_name : string;
  demand : Demand.t;
  popularity : float; (** in [0,1]: fraction of subscribers who care *)
}

type lmp = {
  lmp_name : string;
  subscribers : float;  (** customer mass *)
  access_price : float; (** cₗ, monthly *)
  loyalty : float;      (** in [0,1); incumbents high, entrants low *)
}

type economy = { csps : csp array; lmps : lmp array }

type regime = Nn | Ur_unilateral | Ur_bargained

val regime_name : regime -> string

val churn : csp -> lmp -> float
(** rₗˢ = popularityₛ · (1 − loyaltyₗ), clamped to [0, 1]. *)

type csp_outcome = {
  csp : csp;
  price : float;
  fees : float array;        (** per LMP, same order as economy.lmps *)
  avg_fee : float;           (** subscriber-weighted *)
  csp_profit : float;        (** Σₗ nₗ·D(p)·(p − tₗ) *)
  lmp_fee_revenue : float array; (** per LMP: nₗ·tₗ·D(p) *)
  social : float;            (** Σₗ nₗ·SW(p) *)
  consumer : float;
}

type outcome = {
  regime : regime;
  per_csp : csp_outcome array;
  total_social : float;
  total_consumer : float;
  total_csp_profit : float;
  total_lmp_fee_revenue : float;
}

val validate : economy -> (unit, string) result

val evaluate : economy -> regime -> outcome
(** Raises [Invalid_argument] on an invalid economy. *)

val default_economy : economy
(** A small reference economy: four CSPs spanning the demand families
    (one incumbent-popular, one niche entrant) and three LMPs (a large
    incumbent, a mid-size carrier, a new entrant). *)
