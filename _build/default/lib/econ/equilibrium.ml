module Numeric = Poc_util.Numeric

type t = { fee : float; price : float; iterations : int; residual : float }

let solve_rc ?(tol = 1e-9) ~demand ~rc () =
  if rc < 0.0 then invalid_arg "Equilibrium.solve_rc: negative <rc>";
  let map t =
    let price = Pricing.price_given_fee demand ~fee:(Float.max 0.0 t) in
    Float.max 0.0 ((price -. rc) /. 2.0)
  in
  let init = Float.max 0.0 ((Pricing.monopoly_price demand -. rc) /. 2.0) in
  match Numeric.fixed_point ~tol ~init map with
  | None -> None
  | Some (fee, iterations) ->
    let price = Pricing.price_given_fee demand ~fee in
    let residual = Float.abs (fee -. map fee) in
    Some { fee; price; iterations; residual }

let solve ?tol ~demand ~lmps () =
  let rc =
    match lmps with
    | [] -> 0.0
    | _ :: _ ->
      let num, den =
        List.fold_left
          (fun (num, den) (l : Bargaining.lmp) ->
            ( num +. (l.subscribers *. l.churn *. l.access_price),
              den +. l.subscribers ))
          (0.0, 0.0) lmps
      in
      if den = 0.0 then 0.0 else num /. den
  in
  solve_rc ?tol ~demand ~rc ()
