module Numeric = Poc_util.Numeric

let search_bound d =
  match d with
  | Demand.Uniform vmax -> vmax
  | Demand.Kinked (vmax, _) -> vmax
  | Demand.Exponential _ | Demand.Lomax _ -> Demand.quantile d 1e-6

let price_given_fee d ~fee =
  if fee < 0.0 then invalid_arg "Pricing.price_given_fee: negative fee";
  match d with
  | Demand.Uniform vmax ->
    (* argmax (p-t)(1 - p/vmax) on [t, vmax] *)
    Float.min vmax ((vmax +. fee) /. 2.0)
  | Demand.Exponential mean -> fee +. mean
  | Demand.Lomax (alpha, scale) ->
    (* FOC: 1 + p/s = alpha (p - t)/s  =>  p = (alpha t + s)/(alpha - 1) *)
    ((alpha *. fee) +. scale) /. (alpha -. 1.0)
  | Demand.Kinked _ ->
    let hi = search_bound d in
    let objective p = (p -. fee) *. Demand.demand d p in
    (* The objective is unimodal on each linear piece; search both
       pieces and keep the better argmax. *)
    (match d with
    | Demand.Kinked (vmax, knee) ->
      let lo_piece =
        Numeric.maximize_unimodal ~lo:(Float.min fee knee) ~hi:knee objective
      in
      let hi_piece =
        Numeric.maximize_unimodal ~lo:knee ~hi:(Float.min vmax hi) objective
      in
      if objective lo_piece >= objective hi_piece then lo_piece else hi_piece
    | Demand.Uniform _ | Demand.Exponential _ | Demand.Lomax _ ->
      Numeric.maximize_unimodal ~lo:fee ~hi objective)

let monopoly_price d = price_given_fee d ~fee:0.0

let csp_revenue d ~price ~fee = (price -. fee) *. Demand.demand d price

let lmp_revenue d ~fee = fee *. Demand.demand d (price_given_fee d ~fee)

let unilateral_fee d =
  let hi = search_bound d in
  Numeric.maximize_unimodal ~lo:0.0 ~hi (fun t -> lmp_revenue d ~fee:t)
