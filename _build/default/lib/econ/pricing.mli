(** CSP pricing and LMP fee setting (Sections 4.3-4.4).

    Under network neutrality a CSP posts the monopoly price
    p* = argmax p·D(p).  Facing a termination fee t its margin is
    p − t, so it posts p*(t) = argmax (p − t)·D(p) — Lemma 1 shows
    p*(t) is increasing in t (double marginalization).  An LMP setting
    fees unilaterally then solves t* = argmax t·D(p*(t)). *)

val monopoly_price : Demand.t -> float
(** argmax p·D(p): closed form per family, numeric fallback. *)

val price_given_fee : Demand.t -> fee:float -> float
(** p*(t) of Equation (1).  Requires [fee >= 0]. *)

val csp_revenue : Demand.t -> price:float -> fee:float -> float
(** Per-unit-mass revenue (p − t)·D(p). *)

val lmp_revenue : Demand.t -> fee:float -> float
(** t·D(p*(t)): what an LMP collects per unit mass at fee [t]. *)

val unilateral_fee : Demand.t -> float
(** t* = argmax t·D(p*(t)) — the unilateral (monopoly-LMP) fee. *)

val search_bound : Demand.t -> float
(** Price bound used by the numeric searches: the 1e-6 demand
    quantile. *)
