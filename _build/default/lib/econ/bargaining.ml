let check ~price ~churn ~access_price =
  if price < 0.0 then invalid_arg "Bargaining: negative price";
  if churn < 0.0 || churn > 1.0 then invalid_arg "Bargaining: churn out of [0,1]";
  if access_price < 0.0 then invalid_arg "Bargaining: negative access price"

let bilateral_fee ~price ~churn ~access_price =
  check ~price ~churn ~access_price;
  (price -. (churn *. access_price)) /. 2.0

let nash_product ~demand ~price ~churn ~access_price ~fee =
  check ~price ~churn ~access_price;
  let q = Demand.demand demand price in
  q *. (price -. fee) *. (q *. (fee +. (churn *. access_price)))

type lmp = { subscribers : float; access_price : float; churn : float }

let average_rc lmps =
  let num, den =
    List.fold_left
      (fun (num, den) l ->
        if l.subscribers < 0.0 then invalid_arg "Bargaining: negative subscribers";
        check ~price:0.0 ~churn:l.churn ~access_price:l.access_price;
        ( num +. (l.subscribers *. l.churn *. l.access_price),
          den +. l.subscribers ))
      (0.0, 0.0) lmps
  in
  if den = 0.0 then 0.0 else num /. den

let average_fee ~price lmps =
  if price < 0.0 then invalid_arg "Bargaining: negative price";
  (price -. average_rc lmps) /. 2.0

let per_lmp_fees ~price lmps =
  List.map
    (fun l -> bilateral_fee ~price ~churn:l.churn ~access_price:l.access_price)
    lmps
