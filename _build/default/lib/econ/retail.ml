module Numeric = Poc_util.Numeric

type user_class = { satiation : float; sensitivity : float; mass : float }

type pricing =
  | Flat
  | Usage of float
  | Tiered of { allowance : float; overage : float }

type equilibrium = {
  quality : float;
  total_demand : float;
  per_class_demand : float list;
  welfare : float;
  usage_revenue : float;
  congested : bool;
}

let validate_class u =
  if u.satiation <= 0.0 then Error "satiation must be positive"
  else if u.sensitivity <= 0.0 then Error "sensitivity must be positive"
  else if u.mass < 0.0 then Error "negative mass"
  else Ok ()

let check_inputs users capacity =
  if capacity <= 0.0 then invalid_arg "Retail: capacity must be positive";
  if users = [] then invalid_arg "Retail: no users";
  List.iter
    (fun u ->
      match validate_class u with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Retail: " ^ msg))
    users

(* Marginal utility is b(s − x); utility is b(s·x − x²/2). *)
let utility u x =
  u.sensitivity *. ((u.satiation *. x) -. (x *. x /. 2.0))

let demand_at u pricing ~quality =
  match pricing with
  | Flat -> u.satiation
  | Usage p ->
    Float.max 0.0 (u.satiation -. (p /. (quality *. u.sensitivity)))
  | Tiered { allowance; overage } ->
    if u.satiation <= allowance then u.satiation
    else begin
      let marginal_at_allowance =
        quality *. u.sensitivity *. (u.satiation -. allowance)
      in
      if marginal_at_allowance > overage then
        Float.max allowance
          (u.satiation -. (overage /. (quality *. u.sensitivity)))
      else allowance
    end

let total_demand users pricing ~quality =
  List.fold_left
    (fun acc u -> acc +. (u.mass *. demand_at u pricing ~quality))
    0.0 users

let equilibrium ~users ~capacity pricing =
  check_inputs users capacity;
  (match pricing with
  | Usage p when p < 0.0 -> invalid_arg "Retail: negative usage price"
  | Tiered { allowance; overage } when allowance < 0.0 || overage < 0.0 ->
    invalid_arg "Retail: negative tier parameters"
  | Flat | Usage _ | Tiered _ -> ());
  let quality_given q =
    let d = total_demand users pricing ~quality:(Float.max 1e-9 q) in
    if d <= 0.0 then 1.0 else Float.min 1.0 (capacity /. d)
  in
  let quality =
    match Numeric.fixed_point ~tol:1e-10 ~init:1.0 quality_given with
    | Some (q, _) -> Float.max 1e-9 q
    | None -> Float.max 1e-9 (quality_given 0.5)
  in
  let per_class_demand =
    List.map (fun u -> demand_at u pricing ~quality) users
  in
  let total =
    List.fold_left2
      (fun acc u x -> acc +. (u.mass *. x))
      0.0 users per_class_demand
  in
  let welfare =
    List.fold_left2
      (fun acc u x -> acc +. (u.mass *. quality *. utility u x))
      0.0 users per_class_demand
  in
  let usage_revenue =
    match pricing with
    | Flat -> 0.0
    | Usage p ->
      List.fold_left2 (fun acc u x -> acc +. (u.mass *. p *. x)) 0.0 users
        per_class_demand
    | Tiered { allowance; overage } ->
      List.fold_left2
        (fun acc u x -> acc +. (u.mass *. overage *. Float.max 0.0 (x -. allowance)))
        0.0 users per_class_demand
  in
  {
    quality;
    total_demand = total;
    per_class_demand;
    welfare;
    usage_revenue;
    congested = quality < 1.0 -. 1e-9;
  }

let market_clearing_price ~users ~capacity =
  check_inputs users capacity;
  let demand_at_price p = total_demand users (Usage p) ~quality:1.0 in
  if demand_at_price 0.0 <= capacity then 0.0
  else begin
    let p_max =
      List.fold_left
        (fun acc u -> Float.max acc (u.satiation *. u.sensitivity))
        0.0 users
    in
    match
      Numeric.bisect ~lo:0.0 ~hi:p_max (fun p -> demand_at_price p -. capacity)
    with
    | Some p -> p
    | None -> p_max
  end

let welfare_gain_of_usage_pricing ~users ~capacity =
  let p = market_clearing_price ~users ~capacity in
  let usage = equilibrium ~users ~capacity (Usage p) in
  let flat = equilibrium ~users ~capacity Flat in
  usage.welfare -. flat.welfare
