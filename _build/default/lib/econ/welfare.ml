let social d ~price =
  let price = Float.max 0.0 price in
  (price *. Demand.demand d price) +. Demand.survival_integral d price

let consumer d ~price = Demand.survival_integral d (Float.max 0.0 price)

let producer d ~price ~fee =
  let q = Demand.demand d price in
  ((price -. fee) *. q, fee *. q)

let deadweight_loss d ~price_nn ~price_ur =
  social d ~price:price_nn -. social d ~price:price_ur
