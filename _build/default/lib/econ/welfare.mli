(** Welfare accounting (Sections 4.3 and 4.6).

    Social welfare for one service at posted price p is the total
    utility of the consumers who buy: ∫ₚ^∞ v dF(v).  Payments are pure
    transfers and cancel out of social welfare; consumer welfare nets
    them off.  Both are monotone decreasing in p, which is the engine
    of every Section 4 conclusion. *)

val social : Demand.t -> price:float -> float
(** ∫ₚ^∞ v dF(v) = p·D(p) + ∫ₚ^∞ D(v) dv. *)

val consumer : Demand.t -> price:float -> float
(** ∫ₚ^∞ (v − p) dF(v) = ∫ₚ^∞ D(v) dv. *)

val producer : Demand.t -> price:float -> fee:float -> float * float
(** [(csp_revenue, lmp_fee_revenue)] per unit mass at the given price
    and fee. *)

val deadweight_loss : Demand.t -> price_nn:float -> price_ur:float -> float
(** Social welfare lost moving from price [price_nn] to [price_ur]. *)
