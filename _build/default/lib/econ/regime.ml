type csp = { csp_name : string; demand : Demand.t; popularity : float }

type lmp = {
  lmp_name : string;
  subscribers : float;
  access_price : float;
  loyalty : float;
}

type economy = { csps : csp array; lmps : lmp array }

type regime = Nn | Ur_unilateral | Ur_bargained

let regime_name = function
  | Nn -> "NN"
  | Ur_unilateral -> "UR-unilateral"
  | Ur_bargained -> "UR-bargained"

let churn c l =
  Float.max 0.0 (Float.min 1.0 (c.popularity *. (1.0 -. l.loyalty)))

type csp_outcome = {
  csp : csp;
  price : float;
  fees : float array;
  avg_fee : float;
  csp_profit : float;
  lmp_fee_revenue : float array;
  social : float;
  consumer : float;
}

type outcome = {
  regime : regime;
  per_csp : csp_outcome array;
  total_social : float;
  total_consumer : float;
  total_csp_profit : float;
  total_lmp_fee_revenue : float;
}

let validate economy =
  let problem = ref None in
  let fail msg = if !problem = None then problem := Some msg in
  if Array.length economy.csps = 0 then fail "no CSPs";
  if Array.length economy.lmps = 0 then fail "no LMPs";
  Array.iter
    (fun c ->
      (match Demand.validate c.demand with
      | Ok () -> ()
      | Error msg -> fail (c.csp_name ^ ": " ^ msg));
      if c.popularity < 0.0 || c.popularity > 1.0 then
        fail (c.csp_name ^ ": popularity out of [0,1]"))
    economy.csps;
  Array.iter
    (fun l ->
      if l.subscribers <= 0.0 then fail (l.lmp_name ^ ": non-positive subscribers");
      if l.access_price < 0.0 then fail (l.lmp_name ^ ": negative access price");
      if l.loyalty < 0.0 || l.loyalty >= 1.0 then
        fail (l.lmp_name ^ ": loyalty out of [0,1)"))
    economy.lmps;
  match !problem with None -> Ok () | Some msg -> Error msg

let bargaining_lmps economy c =
  Array.to_list economy.lmps
  |> List.map (fun l ->
         {
           Bargaining.subscribers = l.subscribers;
           access_price = l.access_price;
           churn = churn c l;
         })

let evaluate_csp economy regime c =
  let lmps = economy.lmps in
  let n_total = Array.fold_left (fun acc l -> acc +. l.subscribers) 0.0 lmps in
  let price, fees =
    match regime with
    | Nn ->
      (Pricing.monopoly_price c.demand, Array.map (fun _ -> 0.0) lmps)
    | Ur_unilateral ->
      let fee = Pricing.unilateral_fee c.demand in
      (Pricing.price_given_fee c.demand ~fee, Array.map (fun _ -> fee) lmps)
    | Ur_bargained -> (
      let blmps = bargaining_lmps economy c in
      match Equilibrium.solve ~demand:c.demand ~lmps:blmps () with
      | None -> invalid_arg "Regime.evaluate: bargaining failed to converge"
      | Some eq ->
        let fees =
          Array.map
            (fun l ->
              Float.max 0.0
                (Bargaining.bilateral_fee ~price:eq.price ~churn:(churn c l)
                   ~access_price:l.access_price))
            lmps
        in
        (eq.price, fees))
  in
  let q = Demand.demand c.demand price in
  let csp_profit =
    Array.to_list lmps
    |> List.mapi (fun i l -> l.subscribers *. q *. (price -. fees.(i)))
    |> List.fold_left ( +. ) 0.0
  in
  let lmp_fee_revenue =
    Array.mapi (fun i l -> l.subscribers *. fees.(i) *. q) lmps
  in
  let avg_fee =
    if n_total = 0.0 then 0.0
    else begin
      let weighted = Array.to_list lmps
        |> List.mapi (fun i l -> l.subscribers *. fees.(i))
        |> List.fold_left ( +. ) 0.0
      in
      weighted /. n_total
    end
  in
  {
    csp = c;
    price;
    fees;
    avg_fee;
    csp_profit;
    lmp_fee_revenue;
    social = n_total *. Welfare.social c.demand ~price;
    consumer = n_total *. Welfare.consumer c.demand ~price;
  }

let evaluate economy regime =
  (match validate economy with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Regime.evaluate: " ^ msg));
  let per_csp = Array.map (evaluate_csp economy regime) economy.csps in
  let sum f = Array.fold_left (fun acc o -> acc +. f o) 0.0 per_csp in
  {
    regime;
    per_csp;
    total_social = sum (fun o -> o.social);
    total_consumer = sum (fun o -> o.consumer);
    total_csp_profit = sum (fun o -> o.csp_profit);
    total_lmp_fee_revenue =
      sum (fun o -> Array.fold_left ( +. ) 0.0 o.lmp_fee_revenue);
  }

let default_economy =
  {
    csps =
      [|
        { csp_name = "StreamCo (incumbent video)"; demand = Demand.Uniform 20.0;
          popularity = 0.8 };
        { csp_name = "SocialNet"; demand = Demand.Exponential 10.0;
          popularity = 0.6 };
        { csp_name = "CloudGame (entrant)"; demand = Demand.Lomax (2.5, 15.0);
          popularity = 0.15 };
        { csp_name = "NicheNews (entrant)"; demand = Demand.Kinked (25.0, 12.5);
          popularity = 0.05 };
      |];
    lmps =
      [|
        { lmp_name = "MegaCable (incumbent)"; subscribers = 0.55;
          access_price = 60.0; loyalty = 0.85 };
        { lmp_name = "RegionalTel"; subscribers = 0.35; access_price = 50.0;
          loyalty = 0.6 };
        { lmp_name = "FiberStart (entrant)"; subscribers = 0.10;
          access_price = 40.0; loyalty = 0.2 };
      |];
  }
