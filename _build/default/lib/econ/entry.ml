type access_regime =
  | Build_last_mile of { capex_per_sub : float; amortization_months : float }
  | Unbundled_loop of { lease_per_sub : float }

type transit_regime =
  | Incumbent_transit of { price_per_gbps : float; margin_squeeze : float }
  | Poc_transit of { price_per_gbps : float }

type params = {
  subscribers : float;
  arpu : float;
  gbps_per_sub : float;
  opex_per_sub : float;
  termination_handicap : float;
}

let default_params =
  {
    subscribers = 20_000.0;
    arpu = 55.0;
    gbps_per_sub = 0.004; (* 4 Mbps busy-hour average *)
    opex_per_sub = 14.0;
    termination_handicap = 0.12;
  }

type verdict = {
  monthly_cost_per_sub : float;
  monthly_revenue_per_sub : float;
  margin_per_sub : float;
  viable : bool;
}

(* Hold-up exposure: transit sellers squeeze harder when the buyer has
   sunk capital it cannot walk away from (classic hold-up). *)
let capital_lock = function
  | Build_last_mile _ -> 1.0
  | Unbundled_loop _ -> 0.25

let access_cost = function
  | Build_last_mile { capex_per_sub; amortization_months } ->
    if amortization_months <= 0.0 then invalid_arg "Entry: bad amortization";
    capex_per_sub /. amortization_months
  | Unbundled_loop { lease_per_sub } ->
    if lease_per_sub < 0.0 then invalid_arg "Entry: negative lease";
    lease_per_sub

let transit_cost ~gbps_per_sub ~lock = function
  | Incumbent_transit { price_per_gbps; margin_squeeze } ->
    if margin_squeeze < 0.0 then invalid_arg "Entry: negative squeeze";
    gbps_per_sub *. price_per_gbps *. (1.0 +. (margin_squeeze *. (1.0 +. lock)))
  | Poc_transit { price_per_gbps } -> gbps_per_sub *. price_per_gbps

let revenue params = function
  | Incumbent_transit _ ->
    (* Outside the POC's contractual NN, the incumbent's bargained
       termination-fee advantage bites into the entrant's service
       revenue (Section 4.5). *)
    params.arpu *. (1.0 -. params.termination_handicap)
  | Poc_transit _ -> params.arpu

let evaluate params access transit =
  if params.subscribers <= 0.0 then invalid_arg "Entry: no subscribers";
  if params.termination_handicap < 0.0 || params.termination_handicap >= 1.0
  then invalid_arg "Entry: handicap out of [0,1)";
  let lock = capital_lock access in
  let monthly_cost_per_sub =
    access_cost access
    +. transit_cost ~gbps_per_sub:params.gbps_per_sub ~lock transit
    +. params.opex_per_sub
  in
  let monthly_revenue_per_sub = revenue params transit in
  let margin_per_sub = monthly_revenue_per_sub -. monthly_cost_per_sub in
  { monthly_cost_per_sub; monthly_revenue_per_sub; margin_per_sub;
    viable = margin_per_sub > 0.0 }

type matrix = {
  build_incumbent : verdict;
  build_poc : verdict;
  unbundled_incumbent : verdict;
  unbundled_poc : verdict;
}

let complementarity ?(params = default_params) ~build ~unbundled ~incumbent
    ~poc () =
  {
    build_incumbent = evaluate params build incumbent;
    build_poc = evaluate params build poc;
    unbundled_incumbent = evaluate params unbundled incumbent;
    unbundled_poc = evaluate params unbundled poc;
  }

let weakest_link_complements m =
  m.unbundled_poc.viable
  && (not m.build_poc.viable)
  && (not m.unbundled_incumbent.viable)
  && not m.build_incumbent.viable

let superadditive m =
  let base = m.build_incumbent.margin_per_sub in
  let both = m.unbundled_poc.margin_per_sub -. base in
  let poc_only = m.build_poc.margin_per_sub -. base in
  let unbundling_only = m.unbundled_incumbent.margin_per_sub -. base in
  both > poc_only +. unbundling_only
