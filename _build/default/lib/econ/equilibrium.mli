(** The renegotiation fixed point (Section 4.5, third model).

    Facing average fee t̄ the CSP reprices to p*(t̄); the fees are then
    renegotiated at the new price, and so on.  The equilibrium solves

        t̄ = (p*(t̄) − ⟨rc⟩) / 2.

    Iteration with damping converges for every demand family we ship
    (p*(·) is a contraction there); the solver reports the residual so
    callers can verify. *)

type t = {
  fee : float;          (** equilibrium average fee t̄ *)
  price : float;        (** equilibrium CSP price p*(t̄) *)
  iterations : int;
  residual : float;     (** |t̄ − (p*(t̄) − ⟨rc⟩)/2| at the solution *)
}

val solve :
  ?tol:float -> demand:Demand.t -> lmps:Bargaining.lmp list -> unit ->
  t option
(** [None] when the iteration fails to converge (not observed for the
    shipped families; guarded anyway). Fees are floored at 0 — the
    paper restricts attention to the regime of positive fees. *)

val solve_rc : ?tol:float -> demand:Demand.t -> rc:float -> unit -> t option
(** Same, parameterized directly by ⟨rc⟩. *)
