(** Market entry economics: the POC and loop unbundling are
    complements (Section 2.5).

    The paper argues the two reforms remove different barriers:
    unbundling removes the last-mile capital barrier, the POC removes
    the transit barrier (new LMPs otherwise buy transit from an
    incumbent that competes with them, and face termination-fee
    asymmetries).  This module prices an entrant LMP's first years
    under the four combinations and reports whether entry is viable.

    The model is deliberately simple: monthly per-subscriber economics
    with an amortized capital component, a transit component whose
    price depends on who sells it, and a revenue component reduced by
    the incumbent's termination-fee advantage in the UR regime. *)

type access_regime =
  | Build_last_mile of { capex_per_sub : float; amortization_months : float }
      (** dig fiber: amortized build cost per subscriber *)
  | Unbundled_loop of { lease_per_sub : float }
      (** lease the incumbent's loops at a regulated monthly price *)

type transit_regime =
  | Incumbent_transit of { price_per_gbps : float; margin_squeeze : float }
      (** buy transit from a competitor; [margin_squeeze] is the
          markup the incumbent can impose knowing the entrant has no
          alternative, as a fraction of the base price *)
  | Poc_transit of { price_per_gbps : float }
      (** the POC's posted break-even price *)

type params = {
  subscribers : float;         (** entrant scale (for per-sub economics) *)
  arpu : float;                (** $/month revenue per subscriber *)
  gbps_per_sub : float;        (** peak-hour transit demand per subscriber *)
  opex_per_sub : float;        (** support, power, billing *)
  termination_handicap : float;
      (** fraction of ARPU lost to the incumbent's bargained-fee
          advantage when termination fees are legal (0 under the
          POC's contractual NN) *)
}

val default_params : params

type verdict = {
  monthly_cost_per_sub : float;
  monthly_revenue_per_sub : float;
  margin_per_sub : float;
  viable : bool; (** positive margin *)
}

val evaluate : params -> access_regime -> transit_regime -> verdict

type matrix = {
  build_incumbent : verdict;  (** status quo: build + rival transit *)
  build_poc : verdict;
  unbundled_incumbent : verdict;
  unbundled_poc : verdict;    (** both reforms *)
}

val complementarity :
  ?params:params ->
  build:access_regime ->
  unbundled:access_regime ->
  incumbent:transit_regime ->
  poc:transit_regime ->
  unit ->
  matrix
(** Evaluate all four combinations.  Section 2.5's complementarity is
    of the weakest-link kind: each reform removes a different fatal
    barrier, so entry can require both even though the marginal gains
    partially overlap (removing the transit squeeze helps less once
    you no longer sink last-mile capital — the margins are typically
    SUBadditive while viability is weakest-link). *)

val weakest_link_complements : matrix -> bool
(** True when entry is viable with both reforms but not with either
    alone (nor with neither) — the operational form of the paper's
    "highly complementary solutions". *)

val superadditive : matrix -> bool
(** margin(unbundled_poc) − margin(build_incumbent)
    > (margin(build_poc) − margin(build_incumbent))
    + (margin(unbundled_incumbent) − margin(build_incumbent)).
    Not implied by complementarity; exposed for the bench's ablation. *)
