(** Retail pricing and last-mile congestion (Section 3.4).

    "This does require that users pay for their bandwidth usage. ...
    it is better to have costs borne by the entities that caused those
    costs."  The paper also cites work showing better-adapted pricing
    substantially improves broadband usage.

    Model: a heterogeneous user population with quadratic utility
    u(x) = a·x − b·x²/2 over monthly consumption x, served by an LMP
    with access capacity C.  Congestion degrades quality
    q = min(1, C / total demand) and scales everyone's utility.

    - Flat pricing: marginal price zero, every user consumes to
      satiation (x = a/b) regardless of congestion — the tragedy of
      the commons on the last mile.
    - Usage pricing: price p per unit; users consume to qu'(x) = p.
      The market-clearing p allocates exactly C to the users who value
      it most, eliminating congestion.
    - Tiered: a free allowance then an overage price — the practical
      compromise the paper expects the market to find. *)

type user_class = {
  satiation : float;   (** a/b: consumption at zero marginal price *)
  sensitivity : float; (** b > 0: how fast marginal utility falls *)
  mass : float;        (** number of such users *)
}

type pricing =
  | Flat
  | Usage of float      (** $ per unit *)
  | Tiered of { allowance : float; overage : float }

type equilibrium = {
  quality : float;       (** q in (0, 1] *)
  total_demand : float;
  per_class_demand : float list;
  welfare : float;       (** Σ mass·q·u(x), transfers excluded *)
  usage_revenue : float; (** Σ usage payments (0 under Flat) *)
  congested : bool;
}

val validate_class : user_class -> (unit, string) result

val equilibrium :
  users:user_class list -> capacity:float -> pricing -> equilibrium
(** Fixed point of (demand given quality, quality given demand).
    Raises [Invalid_argument] on bad inputs. *)

val market_clearing_price :
  users:user_class list -> capacity:float -> float
(** The usage price at which total demand equals capacity (0 when
    capacity exceeds satiation demand). *)

val welfare_gain_of_usage_pricing :
  users:user_class list -> capacity:float -> float
(** welfare(Usage at market clearing) − welfare(Flat): non-negative,
    zero when capacity is slack, growing as capacity tightens. *)
