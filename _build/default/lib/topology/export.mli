(** Interchange formats for generated substrates and auction results.

    The paper's instance came from TopologyZoo's GraphML files; this
    module closes the loop by emitting our synthetic substrates in
    GraphML (nodes = POC routers with coordinates, edges = offered
    logical links with owner/capacity/cost attributes) plus flat CSV
    for links, so instances can be inspected in standard graph tooling
    or diffed across seeds. *)

val graphml : Wan.t -> ?selected:(int -> bool) -> unit -> string
(** GraphML document for the offered-link graph; when [selected] is
    given, each edge carries a [selected] boolean attribute. *)

val links_csv : Wan.t -> string
(** One row per offered logical link:
    [id,owner,node_a,node_b,capacity_gbps,latency_ms,distance_km,true_cost]. *)

val sites_csv : Wan.t -> string
(** One row per city: [id,name,x_km,y_km,population,poc_router]. *)

val write_file : string -> string -> unit
(** [write_file path contents] — tiny helper so examples need no extra
    dependencies.  Overwrites. *)
