(** Geographic sites (cities) for the synthetic wide-area substrate.

    The paper builds its POC network from the Internet TopologyZoo
    dataset; offline we generate a city map with the same relevant
    structure: a few large metros, many mid-size cities, and a heavy
    tail of small ones (population weights drive the gravity traffic
    model and the colocation pattern). *)

type t = {
  id : int;
  name : string;
  x : float;          (** abstract map coordinate, in km *)
  y : float;
  population : float; (** relative weight, normalized to sum to 1 later *)
}

val distance : t -> t -> float
(** Euclidean distance in km. *)

val generate : Poc_util.Prng.t -> count:int -> extent_km:float -> t array
(** [generate rng ~count ~extent_km] places [count] cities on an
    [extent_km]-square map.  Cities cluster around a handful of metro
    anchors and carry Zipf-distributed population weights (rank 1 is
    the largest). *)

val pp : Format.formatter -> t -> unit
