type t = { id : int; name : string; x : float; y : float; population : float }

let distance a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

(* Flavor names for the biggest metros; the rest are synthetic. *)
let metro_names =
  [|
    "New York"; "Los Angeles"; "Chicago"; "Dallas"; "Ashburn"; "Seattle";
    "San Jose"; "Atlanta"; "Miami"; "Denver"; "London"; "Frankfurt";
    "Amsterdam"; "Paris"; "Madrid"; "Milan"; "Stockholm"; "Warsaw";
    "Tokyo"; "Singapore"; "Sydney"; "Sao Paulo"; "Toronto"; "Mexico City";
  |]

let name_of_rank i =
  if i < Array.length metro_names then metro_names.(i)
  else Printf.sprintf "City-%03d" i

let generate rng ~count ~extent_km =
  if count <= 0 then invalid_arg "Site.generate: count must be positive";
  if extent_km <= 0.0 then invalid_arg "Site.generate: extent must be positive";
  (* A handful of metro anchors; smaller cities scatter around them with
     some fully random fill, mimicking continental clustering. *)
  let anchor_count = max 3 (count / 12) in
  let anchors =
    Array.init anchor_count (fun _ ->
        (Poc_util.Prng.float_range rng 0.0 extent_km,
         Poc_util.Prng.float_range rng 0.0 extent_km))
  in
  let clamp v = Float.max 0.0 (Float.min extent_km v) in
  let position i =
    if i < anchor_count then anchors.(i)
    else if Poc_util.Prng.bernoulli rng 0.7 then begin
      (* Satellite of a random anchor. *)
      let ax, ay = Poc_util.Prng.pick rng anchors in
      let radius = extent_km /. 12.0 in
      ( clamp (ax +. Poc_util.Prng.gaussian rng ~mu:0.0 ~sigma:radius),
        clamp (ay +. Poc_util.Prng.gaussian rng ~mu:0.0 ~sigma:radius) )
    end
    else
      ( Poc_util.Prng.float_range rng 0.0 extent_km,
        Poc_util.Prng.float_range rng 0.0 extent_km )
  in
  let zipf_weight i = 1.0 /. ((float_of_int i +. 1.0) ** 0.9) in
  let raw =
    Array.init count (fun i ->
        let x, y = position i in
        (i, x, y, zipf_weight i))
  in
  let total = Array.fold_left (fun acc (_, _, _, w) -> acc +. w) 0.0 raw in
  Array.map
    (fun (i, x, y, w) ->
      { id = i; name = name_of_rank i; x; y; population = w /. total })
    raw

let pp ppf s =
  Format.fprintf ppf "%s#%d(%.0f,%.0f pop=%.4f)" s.name s.id s.x s.y s.population
