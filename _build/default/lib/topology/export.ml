let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let graphml (wan : Wan.t) ?selected () =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  add "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n";
  add "  <key id=\"name\" for=\"node\" attr.name=\"name\" attr.type=\"string\"/>\n";
  add "  <key id=\"x\" for=\"node\" attr.name=\"x_km\" attr.type=\"double\"/>\n";
  add "  <key id=\"y\" for=\"node\" attr.name=\"y_km\" attr.type=\"double\"/>\n";
  add "  <key id=\"owner\" for=\"edge\" attr.name=\"owner\" attr.type=\"string\"/>\n";
  add "  <key id=\"capacity\" for=\"edge\" attr.name=\"capacity_gbps\" attr.type=\"double\"/>\n";
  add "  <key id=\"latency\" for=\"edge\" attr.name=\"latency_ms\" attr.type=\"double\"/>\n";
  add "  <key id=\"cost\" for=\"edge\" attr.name=\"monthly_cost\" attr.type=\"double\"/>\n";
  (match selected with
  | Some _ ->
    add "  <key id=\"selected\" for=\"edge\" attr.name=\"selected\" attr.type=\"boolean\"/>\n"
  | None -> ());
  add "  <graph id=\"poc\" edgedefault=\"undirected\">\n";
  Array.iteri
    (fun node site_id ->
      let site = wan.Wan.sites.(site_id) in
      add "    <node id=\"n%d\">\n" node;
      add "      <data key=\"name\">%s</data>\n" (escape site.Site.name);
      add "      <data key=\"x\">%f</data>\n" site.Site.x;
      add "      <data key=\"y\">%f</data>\n" site.Site.y;
      add "    </node>\n")
    wan.Wan.poc_sites;
  Array.iter
    (fun (l : Wan.logical_link) ->
      add "    <edge id=\"e%d\" source=\"n%d\" target=\"n%d\">\n" l.Wan.id
        l.Wan.node_a l.Wan.node_b;
      add "      <data key=\"owner\">%s</data>\n"
        (escape (Wan.link_owner_name wan l));
      add "      <data key=\"capacity\">%f</data>\n" l.Wan.capacity;
      add "      <data key=\"latency\">%f</data>\n" l.Wan.latency_ms;
      add "      <data key=\"cost\">%f</data>\n" l.Wan.true_cost;
      (match selected with
      | Some f -> add "      <data key=\"selected\">%b</data>\n" (f l.Wan.id)
      | None -> ());
      add "    </edge>\n")
    wan.Wan.links;
  add "  </graph>\n</graphml>\n";
  Buffer.contents buf

let links_csv (wan : Wan.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "id,owner,node_a,node_b,capacity_gbps,latency_ms,distance_km,true_cost\n";
  Array.iter
    (fun (l : Wan.logical_link) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%d,%d,%f,%f,%f,%f\n" l.Wan.id
           (Wan.link_owner_name wan l)
           l.Wan.node_a l.Wan.node_b l.Wan.capacity l.Wan.latency_ms
           l.Wan.distance_km l.Wan.true_cost))
    wan.Wan.links;
  Buffer.contents buf

let sites_csv (wan : Wan.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "id,name,x_km,y_km,population,poc_router\n";
  Array.iter
    (fun (site : Site.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%f,%f,%f,%b\n" site.Site.id site.Site.name
           site.Site.x site.Site.y site.Site.population
           (wan.Wan.node_of_site.(site.Site.id) <> None)))
    wan.Wan.sites;
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  (try output_string oc contents
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
