lib/topology/wan.ml: Array Float Fun Hashtbl List Option Physical Poc_graph Poc_util Printf Site
