lib/topology/site.mli: Format Poc_util
