lib/topology/export.ml: Array Buffer Printf Site String Wan
