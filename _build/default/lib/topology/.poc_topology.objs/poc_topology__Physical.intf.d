lib/topology/physical.mli: Poc_graph Poc_util Site
