lib/topology/physical.ml: Array Float Hashtbl List Poc_graph Poc_util Site
