lib/topology/wan.mli: Poc_graph Site
