lib/topology/site.ml: Array Float Format Poc_util Printf
