lib/topology/export.mli: Wan
