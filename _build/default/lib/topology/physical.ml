module Prng = Poc_util.Prng
module Graph = Poc_graph.Graph
module Paths = Poc_graph.Paths

type t = {
  graph : Graph.t;
  node_sites : int array; (* graph node -> site id *)
  node_of_site : (int, int) Hashtbl.t;
}

let sites t = Array.copy t.node_sites

let graph t = t.graph

let sample_tier rng tiers =
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 tiers in
  let target = Prng.float rng *. total in
  let rec walk i acc =
    if i >= Array.length tiers - 1 then snd tiers.(i)
    else begin
      let w, v = tiers.(i) in
      if acc +. w >= target then v else walk (i + 1) (acc +. w)
    end
  in
  walk 0 0.0

let build rng all_sites ~footprint ~capacity_tiers ~shortcut_fraction =
  let n = Array.length footprint in
  if n = 0 then invalid_arg "Physical.build: empty footprint";
  let g = Graph.create () in
  Graph.add_nodes g n;
  let node_sites = Array.copy footprint in
  let node_of_site = Hashtbl.create n in
  Array.iteri
    (fun node site ->
      if Hashtbl.mem node_of_site site then
        invalid_arg "Physical.build: duplicate site in footprint";
      Hashtbl.replace node_of_site site node)
    footprint;
  let site node = all_sites.(node_sites.(node)) in
  let dist a b = Site.distance (site a) (site b) in
  (* Prim's MST over Euclidean distances keeps the footprint connected
     with realistic short spans. *)
  if n > 1 then begin
    let in_tree = Array.make n false in
    let best_dist = Array.make n infinity in
    let best_from = Array.make n (-1) in
    in_tree.(0) <- true;
    for v = 1 to n - 1 do
      best_dist.(v) <- dist 0 v;
      best_from.(v) <- 0
    done;
    for _ = 1 to n - 1 do
      let pick = ref (-1) in
      for v = 0 to n - 1 do
        if (not in_tree.(v)) && (!pick < 0 || best_dist.(v) < best_dist.(!pick))
        then pick := v
      done;
      let v = !pick in
      in_tree.(v) <- true;
      let d = dist best_from.(v) v in
      let capacity = sample_tier rng capacity_tiers in
      ignore (Graph.add_edge g best_from.(v) v ~weight:(Float.max 1.0 d) ~capacity);
      for u = 0 to n - 1 do
        if (not in_tree.(u)) && dist v u < best_dist.(u) then begin
          best_dist.(u) <- dist v u;
          best_from.(u) <- v
        end
      done
    done
  end;
  (* Waxman-style shortcuts: sample random pairs, accept with
     probability decaying in distance, until we have added roughly
     shortcut_fraction * (n-1) extra edges. *)
  if n > 2 && shortcut_fraction > 0.0 then begin
    let wanted =
      int_of_float (Float.round (shortcut_fraction *. float_of_int (n - 1)))
    in
    let max_span =
      let acc = ref 1.0 in
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          acc := Float.max !acc (dist a b)
        done
      done;
      !acc
    in
    let added = ref 0 in
    let attempts = ref 0 in
    while !added < wanted && !attempts < 50 * wanted do
      incr attempts;
      let a = Prng.int rng n in
      let b = Prng.int rng n in
      if a <> b then begin
        let d = dist a b in
        let accept = exp (-.d /. (0.25 *. max_span)) in
        if Prng.bernoulli rng accept then begin
          let capacity = sample_tier rng capacity_tiers in
          ignore (Graph.add_edge g a b ~weight:(Float.max 1.0 d) ~capacity);
          incr added
        end
      end
    done
  end;
  { graph = g; node_sites; node_of_site }

let path_metrics t site_a site_b =
  match (Hashtbl.find_opt t.node_of_site site_a, Hashtbl.find_opt t.node_of_site site_b) with
  | None, _ | _, None -> None
  | Some a, Some b ->
    if a = b then Some (0.0, infinity)
    else begin
      match Paths.shortest_path t.graph a b with
      | None -> None
      | Some path ->
        let d = Paths.path_weight path in
        let bottleneck =
          List.fold_left
            (fun acc (e : Graph.edge) -> Float.min acc e.capacity)
            infinity path
        in
        Some (d, bottleneck)
    end
