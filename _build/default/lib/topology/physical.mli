(** Per-operator physical wide-area networks.

    Each Bandwidth Provider's offered logical links are backed by a
    physical fiber network over its footprint of cities; a logical link
    between two POC sites rides the BP-internal shortest physical path
    (the paper: logical links "may involve several physical links").
    We build each footprint network as a Euclidean minimum spanning
    tree plus Waxman-style shortcut edges, the standard synthetic-WAN
    recipe. *)

type t

val build :
  Poc_util.Prng.t ->
  Site.t array ->
  footprint:int array ->
  capacity_tiers:(float * float) array ->
  shortcut_fraction:float ->
  t
(** [build rng sites ~footprint ~capacity_tiers ~shortcut_fraction]
    builds a connected network over the site ids in [footprint].
    [capacity_tiers] is a [(weight, gbps)] distribution for physical
    link capacities; [shortcut_fraction] adds roughly that fraction of
    extra edges relative to the MST edge count, biased toward short
    spans.  Requires a non-empty footprint of distinct site ids. *)

val sites : t -> int array
(** Footprint site ids, in graph-node order. *)

val graph : t -> Poc_graph.Graph.t

val path_metrics : t -> int -> int -> (float * float) option
(** [path_metrics t site_a site_b] is [(distance_km, bottleneck_gbps)]
    along the internal shortest (by distance) path, or [None] when the
    sites are not both in the footprint.  [Some (0., inf)] when
    [site_a = site_b]. *)
