lib/sim/multicast.ml: Array Hashtbl List Poc_core Poc_graph Poc_topology
