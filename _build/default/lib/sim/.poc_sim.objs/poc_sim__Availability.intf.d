lib/sim/availability.mli: Poc_core
