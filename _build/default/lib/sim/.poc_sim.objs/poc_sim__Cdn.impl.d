lib/sim/cdn.ml: Fabric Float List Poc_core
