lib/sim/cdn.mli: Fabric Poc_core
