lib/sim/fabric.ml: Array Float Hashtbl List Poc_core Poc_graph Poc_topology Poc_traffic Poc_util
