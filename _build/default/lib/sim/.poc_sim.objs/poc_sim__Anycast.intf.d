lib/sim/anycast.mli: Poc_core
