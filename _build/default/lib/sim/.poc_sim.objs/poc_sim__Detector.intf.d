lib/sim/detector.mli: Fabric Poc_core
