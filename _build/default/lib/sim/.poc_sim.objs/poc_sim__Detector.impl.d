lib/sim/detector.ml: Array Fabric Float Hashtbl List Option Poc_core
