lib/sim/multicast.mli: Poc_core
