lib/sim/fabric.mli: Poc_core Poc_util
