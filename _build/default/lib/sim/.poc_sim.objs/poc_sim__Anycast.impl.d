lib/sim/anycast.ml: Array Float List Poc_core Poc_graph Poc_topology
