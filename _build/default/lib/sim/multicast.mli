(** Multicast delivery over the POC fabric (Section 3.1).

    The POC "could support multicast and anycast delivery mechanisms".
    For one-to-many distribution (live video, software updates) the
    fabric builds a shortest-path delivery tree from the source's
    attachment point and replicates at branch routers, so each backbone
    link carries the stream once instead of once per receiver.  This
    module builds such trees over the leased backbone and quantifies
    the capacity saved against per-receiver unicast. *)

type group = {
  source : int;         (** member id originating the stream *)
  receivers : int list; (** member ids subscribed *)
  gbps : float;         (** stream rate *)
}

type tree = {
  edge_ids : int list;   (** links in the delivery tree (each once) *)
  reached : int list;    (** receivers actually connected *)
  unreachable : int list;
}

val build_tree : Poc_core.Planner.plan -> group -> tree
(** Union of latency-shortest backbone paths from the source's
    attachment to each receiver's attachment (a shortest-path tree:
    paths from one Dijkstra run, so they nest). *)

type comparison = {
  unicast_link_gbps : float;   (** Σ over receivers of rate x path links *)
  multicast_link_gbps : float; (** rate x tree links *)
  savings_fraction : float;    (** 1 − multicast/unicast (0 when equal) *)
}

val compare_unicast : Poc_core.Planner.plan -> group list -> comparison
(** Aggregate capacity comparison over several groups; unreachable
    receivers are excluded from both sides. *)
