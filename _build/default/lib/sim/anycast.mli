(** Anycast delivery over the POC fabric (Section 3.1).

    A service announced from several attachment points is reached at
    the replica nearest (by backbone latency) to each client — the
    other delivery mechanism, besides multicast, that the paper says
    the POC could support.  We compute per-client replica assignment
    and the latency improvement over serving everything from the
    service's home site. *)

type assignment = {
  client : int;        (** member id *)
  replica : int;       (** chosen attachment node *)
  latency_ms : float;  (** backbone latency to that replica *)
}

type report = {
  assignments : assignment list;
  mean_latency_ms : float;
  mean_unicast_latency_ms : float; (** everything served from [home] *)
  improvement : float;             (** 1 − anycast/unicast, in [0, 1) *)
  unreachable : int list;          (** clients with no backbone path *)
}

val evaluate :
  Poc_core.Planner.plan ->
  home:int ->
  replicas:int list ->
  clients:int list ->
  report
(** [evaluate plan ~home ~replicas ~clients]: [home] and [replicas]
    are attachment nodes (the home counts as a replica); [clients]
    are member ids.  Raises [Invalid_argument] on unknown nodes or an
    empty replica set. *)
