(** Edge CDN deployments under the POC's terms of service.

    Section 3.2: LMPs (and the POC itself) may host CDN replicas "on a
    fee for service basis", or let CSPs install their own "for a set
    fee" — what they cannot do is allow only certain parties to deploy
    (condition (iii) of the peering terms).  This module models replica
    deployments: flows whose content is replicated at the destination
    LMP are served at the edge and leave the backbone, and deployment
    policies are translated into terms-of-service observations so the
    compliance engine can judge selective hosting. *)

type hosting_policy =
  | Open_hosting of float
      (** posted monthly fee; any CSP may deploy at that price *)
  | Selective_hosting of { allowed : int list; fee : float }
      (** only the listed CSP members may deploy — a violation *)

type deployment = {
  host_lmp : int;  (** member id of the hosting LMP *)
  csp : int;       (** member id of the CSP whose replica this is *)
  hit_rate : float;(** fraction of that CSP's traffic to this LMP
                       served from the replica, in [0, 1] *)
}

type offload = {
  served_flows : Fabric.flow list;
      (** flows (or fractions) still crossing the backbone *)
  offloaded_gbps : float;
  backbone_gbps : float;
}

val apply : deployment list -> Fabric.flow list -> offload
(** Shrink each flow covered by a deployment by its hit rate; flows
    fully served at the edge disappear from the backbone workload.
    Raises [Invalid_argument] on hit rates outside [0, 1]. *)

val observations :
  host_lmp:int ->
  policy:hosting_policy ->
  applicants:int list ->
  Poc_core.Terms.observation list
(** What the compliance engine sees when [applicants] (CSP member ids)
    ask to deploy at [host_lmp]: open hosting yields posted-price
    allowances for everyone; selective hosting yields a denial
    observation per rejected applicant (condition (iii)). *)

val judge_policy :
  host_lmp:int ->
  policy:hosting_policy ->
  applicants:int list ->
  (Poc_core.Terms.observation * string) list
(** The violations, if any, that the policy produces. *)
