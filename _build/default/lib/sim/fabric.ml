module Prng = Poc_util.Prng
module Graph = Poc_graph.Graph
module Paths = Poc_graph.Paths
module Planner = Poc_core.Planner
module Member = Poc_core.Member

type qos = Standard | Premium

type flow = {
  flow_id : int;
  src_member : int;
  dst_member : int;
  gbps : float;
  app : string;
  qos : qos;
}

type policy =
  | Neutral
  | Throttle of { app : string option; src : int option; factor : float }
  | Block_src of int

type config = {
  policies : (int * policy) list;
  premium_boost : float;
}

let neutral_config = { policies = []; premium_boost = 1.0 }

type flow_result = {
  flow : flow;
  delivered : float;
  latency_ms : float;
  hops : int;
  congestion_share : float;
  policy_applied : bool;
}

type report = {
  results : flow_result array;
  offered_gbps : float;
  delivered_gbps : float;
  link_load : float array;
  max_utilization : float;
}

(* Roughly the Internet's application mix: video dominates. *)
let app_mix = [| (0.55, "video"); (0.2, "web"); (0.15, "cloud"); (0.1, "gaming") |]

let pick_app rng =
  let x = Prng.float rng in
  let rec walk i acc =
    if i >= Array.length app_mix - 1 then snd app_mix.(i)
    else begin
      let w, a = app_mix.(i) in
      if acc +. w >= x then a else walk (i + 1) (acc +. w)
    end
  in
  walk 0 0.0

let synthesize_flows rng (plan : Planner.plan) ~flows_per_pair =
  if flows_per_pair <= 0 then invalid_arg "Fabric.synthesize_flows";
  (* Member lookup by attachment node; content nodes host both an LMP
     and a CSP member, and the CSP originates the content share. *)
  let members = Array.of_list plan.members in
  let lmp_at = Hashtbl.create 64 in
  let csp_at = Hashtbl.create 16 in
  Array.iter
    (fun (m : Member.t) ->
      match m.kind with
      | Member.Lmp -> Hashtbl.replace lmp_at m.attachment m.id
      | Member.Direct_csp -> Hashtbl.replace csp_at m.attachment m.id
      | Member.External_isp -> ())
    members;
  let flows = ref [] in
  let next = ref 0 in
  List.iter
    (fun (i, j, gbps) ->
      let src_member =
        (* Content share of the node's output is sourced by the CSP. *)
        match Hashtbl.find_opt csp_at i with
        | Some csp when Prng.bernoulli rng plan.config.Planner.csp_share -> csp
        | Some _ | None -> (
          match Hashtbl.find_opt lmp_at i with
          | Some lmp -> lmp
          | None -> -1)
      in
      let dst_member =
        match Hashtbl.find_opt lmp_at j with Some lmp -> lmp | None -> -1
      in
      if src_member >= 0 && dst_member >= 0 && gbps > 0.0 then begin
        let per = gbps /. float_of_int flows_per_pair in
        for _ = 1 to flows_per_pair do
          let qos = if Prng.bernoulli rng 0.15 then Premium else Standard in
          flows :=
            {
              flow_id = !next;
              src_member;
              dst_member;
              gbps = per;
              app = pick_app rng;
              qos;
            }
            :: !flows;
          incr next
        done
      end)
    (Poc_traffic.Matrix.pair_demands plan.matrix);
  List.rev !flows

let member_attachment (plan : Planner.plan) id =
  match List.find_opt (fun (m : Member.t) -> m.id = id) plan.members with
  | Some m -> m.attachment
  | None -> invalid_arg "Fabric: unknown member"

let policy_for config dst_member =
  match List.assoc_opt dst_member config.policies with
  | Some p -> p
  | None -> Neutral

let policy_factor policy (flow : flow) =
  match policy with
  | Neutral -> 1.0
  | Block_src src -> if flow.src_member = src then 0.0 else 1.0
  | Throttle { app; src; factor } ->
    let app_match = match app with None -> true | Some a -> a = flow.app in
    let src_match = match src with None -> true | Some s -> s = flow.src_member in
    if app_match && src_match then factor else 1.0

let run (plan : Planner.plan) config flows =
  if config.premium_boost < 1.0 then invalid_arg "Fabric.run: premium boost < 1";
  let g = plan.wan.Poc_topology.Wan.graph in
  let m = Graph.edge_count g in
  let enabled = Planner.backbone_enabled plan in
  (* Phase 1: route flows largest-first over the backbone with a
     congestion-aware metric (latency inflated by current utilization,
     sharply once a link is full), accumulating load as we go.  This
     approximates the traffic engineering a real fabric performs. *)
  let load = Array.make m 0.0 in
  let adjacency =
    Array.init (Graph.node_count g) (fun u ->
        Graph.neighbors g u
        |> List.filter (fun (_, (e : Graph.edge)) -> enabled e.id)
        |> Array.of_list)
  in
  let congestion_path src dst =
    let n = Graph.node_count g in
    let dist = Array.make n infinity in
    let pred = Array.make n (-1) in
    let settled = Array.make n false in
    let heap = Poc_graph.Heap.create () in
    dist.(src) <- 0.0;
    Poc_graph.Heap.push heap 0.0 src;
    let rec loop () =
      match Poc_graph.Heap.pop heap with
      | None -> ()
      | Some _ when settled.(dst) -> ()
      | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          Array.iter
            (fun (v, (e : Graph.edge)) ->
              if not settled.(v) then begin
                let util =
                  if e.capacity > 0.0 then load.(e.id) /. e.capacity else 1.0
                in
                let penalty =
                  if util >= 1.0 then 1000.0 *. util else 1.0 +. (4.0 *. util)
                in
                let nd = d +. (e.weight *. penalty) in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  pred.(v) <- e.id;
                  Poc_graph.Heap.push heap nd v
                end
              end)
            adjacency.(u)
        end;
        loop ()
    in
    loop ();
    if dist.(dst) = infinity then None
    else begin
      let rec walk node acc =
        if node = src then acc
        else begin
          let e = Graph.edge g pred.(node) in
          walk (Graph.other_endpoint e node) (e :: acc)
        end
      in
      Some (walk dst [])
    end
  in
  let by_size =
    List.sort (fun a b -> compare b.gbps a.gbps) flows
  in
  let routed =
    List.map
      (fun flow ->
        let src_node = member_attachment plan flow.src_member in
        let dst_node = member_attachment plan flow.dst_member in
        let path =
          if src_node = dst_node then Some [] else congestion_path src_node dst_node
        in
        (match path with
        | Some p ->
          let weight =
            flow.gbps *. (if flow.qos = Premium then config.premium_boost else 1.0)
          in
          List.iter
            (fun (e : Graph.edge) -> load.(e.id) <- load.(e.id) +. weight)
            p
        | None -> ());
        (flow, path))
      by_size
  in
  (* Phase 2: proportional share on congested links, then destination
     policy. *)
  let results =
    List.map
      (fun (flow, path) ->
        match path with
        | None ->
          {
            flow;
            delivered = 0.0;
            latency_ms = infinity;
            hops = 0;
            congestion_share = 1.0;
            policy_applied = false;
          }
        | Some p ->
          let share =
            List.fold_left
              (fun acc (e : Graph.edge) ->
                if load.(e.id) > e.capacity && load.(e.id) > 0.0 then
                  Float.min acc (e.capacity /. load.(e.id))
                else acc)
              1.0 p
          in
          let boost = if flow.qos = Premium then config.premium_boost else 1.0 in
          let congested = Float.min 1.0 (share *. boost) in
          let policy = policy_for config flow.dst_member in
          let factor = policy_factor policy flow in
          let delivered = flow.gbps *. congested *. factor in
          let base_latency = Paths.path_weight p in
          let latency_ms =
            (* Queueing penalty grows as links run hot. *)
            base_latency *. (1.0 +. (0.5 *. (1.0 -. congested)))
          in
          {
            flow;
            delivered;
            latency_ms;
            hops = List.length p;
            congestion_share = congested;
            policy_applied = factor < 1.0;
          })
      routed
  in
  let offered = List.fold_left (fun acc f -> acc +. f.gbps) 0.0 flows in
  let delivered =
    List.fold_left (fun acc r -> acc +. r.delivered) 0.0 results
  in
  let max_utilization =
    Graph.fold_edges
      (fun e acc ->
        if enabled e.Graph.id && e.capacity > 0.0 then
          Float.max acc (load.(e.id) /. e.capacity)
        else acc)
      g 0.0
  in
  {
    results = Array.of_list results;
    offered_gbps = offered;
    delivered_gbps = delivered;
    link_load = load;
    max_utilization;
  }

let delivery_ratio r =
  if r.offered_gbps <= 0.0 then 1.0 else r.delivered_gbps /. r.offered_gbps
