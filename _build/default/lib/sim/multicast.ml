module Graph = Poc_graph.Graph
module Paths = Poc_graph.Paths
module Planner = Poc_core.Planner
module Member = Poc_core.Member

type group = { source : int; receivers : int list; gbps : float }

type tree = {
  edge_ids : int list;
  reached : int list;
  unreachable : int list;
}

type comparison = {
  unicast_link_gbps : float;
  multicast_link_gbps : float;
  savings_fraction : float;
}

let attachment (plan : Planner.plan) id =
  match List.find_opt (fun (m : Member.t) -> m.Member.id = id) plan.members with
  | Some m -> m.Member.attachment
  | None -> invalid_arg "Multicast: unknown member"

(* One Dijkstra from the source gives nested shortest paths; the tree
   is the union of the predecessor edges on each receiver's path. *)
let paths_from plan src_node =
  let g = plan.Planner.wan.Poc_topology.Wan.graph in
  let enabled = Planner.backbone_enabled plan in
  Paths.dijkstra ~enabled g src_node

let walk_path g pred src_node node =
  let rec walk node acc =
    if node = src_node then Some acc
    else begin
      match pred.(node) with
      | None -> None
      | Some eid ->
        let e = Graph.edge g eid in
        walk (Graph.other_endpoint e node) (eid :: acc)
    end
  in
  if node = src_node then Some [] else walk node []

let build_tree (plan : Planner.plan) group =
  if group.gbps < 0.0 then invalid_arg "Multicast: negative rate";
  let g = plan.Planner.wan.Poc_topology.Wan.graph in
  let src_node = attachment plan group.source in
  let _, pred = paths_from plan src_node in
  let edges = Hashtbl.create 64 in
  let reached = ref [] in
  let unreachable = ref [] in
  List.iter
    (fun r ->
      let node = attachment plan r in
      match walk_path g pred src_node node with
      | Some path ->
        reached := r :: !reached;
        List.iter (fun eid -> Hashtbl.replace edges eid ()) path
      | None -> unreachable := r :: !unreachable)
    group.receivers;
  {
    edge_ids = Hashtbl.fold (fun e () acc -> e :: acc) edges [] |> List.sort compare;
    reached = List.rev !reached;
    unreachable = List.rev !unreachable;
  }

let compare_unicast (plan : Planner.plan) groups =
  let g = plan.Planner.wan.Poc_topology.Wan.graph in
  let unicast = ref 0.0 in
  let multicast = ref 0.0 in
  List.iter
    (fun group ->
      let src_node = attachment plan group.source in
      let _, pred = paths_from plan src_node in
      let tree = build_tree plan group in
      multicast :=
        !multicast +. (group.gbps *. float_of_int (List.length tree.edge_ids));
      List.iter
        (fun r ->
          let node = attachment plan r in
          match walk_path g pred src_node node with
          | Some path ->
            unicast :=
              !unicast +. (group.gbps *. float_of_int (List.length path))
          | None -> ())
        tree.reached)
    groups;
  {
    unicast_link_gbps = !unicast;
    multicast_link_gbps = !multicast;
    savings_fraction =
      (if !unicast <= 0.0 then 0.0 else 1.0 -. (!multicast /. !unicast));
  }
