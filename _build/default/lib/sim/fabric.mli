(** Flow-level simulation of the operating POC fabric.

    Once the planner has leased a backbone, members exchange traffic
    over it.  This module synthesizes member-to-member flows from the
    planning traffic matrix, routes them over the leased links,
    applies each LMP's (possibly non-neutral) local policy, and
    reports achieved throughput and latency per flow.  It is the
    workload generator for the compliance experiments: inject a
    discriminating policy, watch the detector catch it. *)

type qos = Standard | Premium

type flow = {
  flow_id : int;
  src_member : int;
  dst_member : int;
  gbps : float;
  app : string;     (** "video", "web", ... *)
  qos : qos;
}

type policy =
  | Neutral
  | Throttle of { app : string option; src : int option; factor : float }
      (** scale matching incoming flows by [factor] in (0,1);
          [None] selectors match everything *)
  | Block_src of int
      (** drop flows from one member — the termination-fee threat *)

type config = {
  policies : (int * policy) list; (** destination LMP member id -> policy *)
  premium_boost : float;
      (** capacity share multiplier for Premium flows on congested
          links (openly-priced QoS, allowed by the terms) *)
}

val neutral_config : config

type flow_result = {
  flow : flow;
  delivered : float;        (** Gbps actually delivered *)
  latency_ms : float;
  hops : int;
  congestion_share : float; (** fraction explained by congestion alone,
                                as a measurement system would estimate
                                from control flows on the same path *)
  policy_applied : bool;
}

type report = {
  results : flow_result array;
  offered_gbps : float;
  delivered_gbps : float;
  link_load : float array; (** per link id *)
  max_utilization : float;
}

val synthesize_flows :
  Poc_util.Prng.t -> Poc_core.Planner.plan -> flows_per_pair:int -> flow list
(** Split each member-pair demand into [flows_per_pair] flows with
    application labels drawn from a fixed mix (video-heavy, like the
    Internet) and ~15% Premium QoS. *)

val run : Poc_core.Planner.plan -> config -> flow list -> report
(** Route over the leased backbone (latency-shortest paths), compute
    proportional-share congestion, then apply destination policies.
    Conservation: [delivered <= offered] per flow, with equality when
    links are uncongested and no policy matches. *)

val delivery_ratio : report -> float
(** delivered / offered (1.0 when nothing is dropped). *)
