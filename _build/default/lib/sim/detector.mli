(** Neutrality-violation detection from observed flow performance.

    The POC's terms-of-service are contractual; enforcement needs
    measurement (cf. the paper's citation of large-scale differential-
    treatment studies).  The detector compares delivery ratios of
    flows arriving at the same LMP: if one source's (or application's)
    traffic fares markedly worse than the rest of that LMP's inbound
    traffic while other LMPs deliver the same source normally, the LMP
    is flagged and a {!Poc_core.Terms.observation} is synthesized for
    the compliance engine. *)

type suspicion = {
  lmp : int;                (** destination member id *)
  against : against;
  delivery : float;          (** mean delivery ratio of the victim group *)
  baseline : float;          (** mean delivery ratio of everyone else *)
}

and against = Src of int | App of string

val detect :
  ?threshold:float -> Fabric.report -> suspicion list
(** [detect report] flags (lmp, group) pairs whose delivery ratio is
    below [threshold] (default 0.75) times the LMP's baseline, with
    congestion discounted: groups whose shortfall is explained by
    link congestion (the same share every flow on that path suffers)
    are not flagged. *)

val to_observations : suspicion list -> Poc_core.Terms.observation list
(** Convert suspicions into terms-of-service observations (basis
    [Commercial_preference] — the detector has ruled out congestion,
    and no posted price or security excuse is on file). *)

val audit :
  ?threshold:float -> Fabric.report -> (Poc_core.Terms.observation * string) list
(** Detect, convert and judge in one step: the violations the POC
    would act on. *)
