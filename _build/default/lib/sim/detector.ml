module Terms = Poc_core.Terms

type suspicion = {
  lmp : int;
  against : against;
  delivery : float;
  baseline : float;
}

and against = Src of int | App of string

(* Mean of (delivered / (offered * congestion_share)) per group: the
   share of loss congestion does NOT explain. *)
let unexplained_ratio (r : Fabric.flow_result) =
  let expected = r.flow.Fabric.gbps *. r.congestion_share in
  if expected <= 0.0 then 1.0 else Float.min 1.0 (r.delivered /. expected)

let group_means results ~key =
  let sums = Hashtbl.create 16 in
  Array.iter
    (fun (r : Fabric.flow_result) ->
      let k = key r in
      let s, n = Option.value ~default:(0.0, 0) (Hashtbl.find_opt sums k) in
      Hashtbl.replace sums k (s +. unexplained_ratio r, n + 1))
    results;
  Hashtbl.fold
    (fun k (s, n) acc -> (k, s /. float_of_int (max 1 n), n) :: acc)
    sums []

let detect ?(threshold = 0.75) (report : Fabric.report) =
  (* Partition results by destination LMP. *)
  let by_dst = Hashtbl.create 16 in
  Array.iter
    (fun (r : Fabric.flow_result) ->
      let dst = r.flow.Fabric.dst_member in
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_dst dst) in
      Hashtbl.replace by_dst dst (r :: prev))
    report.results;
  let suspicions = ref [] in
  Hashtbl.iter
    (fun dst rs ->
      let results = Array.of_list rs in
      let check make_against key =
        let groups = group_means results ~key in
        match groups with
        | [] | [ _ ] -> () (* nothing to compare against *)
        | _ :: _ :: _ ->
          List.iter
            (fun (k, mean, n) ->
              if n >= 2 then begin
                let others =
                  List.filter (fun (k', _, _) -> k' <> k) groups
                  |> List.map (fun (_, m, _) -> m)
                in
                let baseline =
                  List.fold_left ( +. ) 0.0 others
                  /. float_of_int (List.length others)
                in
                if baseline > 0.0 && mean < threshold *. baseline then
                  suspicions :=
                    { lmp = dst; against = make_against k; delivery = mean;
                      baseline }
                    :: !suspicions
              end)
            groups
      in
      check (fun s -> Src s) (fun r -> r.Fabric.flow.Fabric.src_member);
      check (fun a -> App a) (fun r -> r.Fabric.flow.Fabric.app))
    by_dst;
  List.sort compare !suspicions

let to_observations suspicions =
  List.map
    (fun s ->
      let selector =
        match s.against with
        | Src m -> Terms.By_source m
        | App a -> Terms.By_application a
      in
      let action =
        if s.delivery <= 0.01 then Terms.Block else Terms.Deprioritize
      in
      {
        Terms.actor = s.lmp;
        selector;
        action;
        basis = Terms.Commercial_preference;
      })
    suspicions

let audit ?threshold report =
  detect ?threshold report |> to_observations |> Terms.violations
