module Terms = Poc_core.Terms

type hosting_policy =
  | Open_hosting of float
  | Selective_hosting of { allowed : int list; fee : float }

type deployment = { host_lmp : int; csp : int; hit_rate : float }

type offload = {
  served_flows : Fabric.flow list;
  offloaded_gbps : float;
  backbone_gbps : float;
}

let apply deployments flows =
  List.iter
    (fun d ->
      if d.hit_rate < 0.0 || d.hit_rate > 1.0 then
        invalid_arg "Cdn.apply: hit rate out of [0,1]")
    deployments;
  let rate_for flow =
    List.fold_left
      (fun acc d ->
        if d.csp = flow.Fabric.src_member && d.host_lmp = flow.Fabric.dst_member
        then Float.max acc d.hit_rate
        else acc)
      0.0 deployments
  in
  let offloaded = ref 0.0 in
  let backbone = ref 0.0 in
  let served =
    List.filter_map
      (fun flow ->
        let rate = rate_for flow in
        let edge_part = flow.Fabric.gbps *. rate in
        let core_part = flow.Fabric.gbps -. edge_part in
        offloaded := !offloaded +. edge_part;
        if core_part <= 1e-12 then None
        else begin
          backbone := !backbone +. core_part;
          Some { flow with Fabric.gbps = core_part }
        end)
      flows
  in
  { served_flows = served; offloaded_gbps = !offloaded; backbone_gbps = !backbone }

let observations ~host_lmp ~policy ~applicants =
  match policy with
  | Open_hosting fee ->
    (* One open offer, available to all traffic at a posted price. *)
    [
      {
        Terms.actor = host_lmp;
        selector = Terms.All_traffic;
        action = Terms.Allow_third_party_service "cdn";
        basis = Terms.Posted_price fee;
      };
    ]
  | Selective_hosting { allowed; fee = _ } ->
    (* Per-applicant decisions based on who is asking: condition (iii). *)
    List.map
      (fun csp ->
        if List.mem csp allowed then
          {
            Terms.actor = host_lmp;
            selector = Terms.By_source csp;
            action = Terms.Allow_third_party_service "cdn";
            basis = Terms.Commercial_preference;
          }
        else
          {
            Terms.actor = host_lmp;
            selector = Terms.By_source csp;
            action = Terms.Deny_third_party_service "cdn";
            basis = Terms.Commercial_preference;
          })
      applicants

let judge_policy ~host_lmp ~policy ~applicants =
  Terms.violations (observations ~host_lmp ~policy ~applicants)
