module Graph = Poc_graph.Graph
module Paths = Poc_graph.Paths
module Planner = Poc_core.Planner
module Member = Poc_core.Member

type assignment = { client : int; replica : int; latency_ms : float }

type report = {
  assignments : assignment list;
  mean_latency_ms : float;
  mean_unicast_latency_ms : float;
  improvement : float;
  unreachable : int list;
}

let attachment (plan : Planner.plan) id =
  match List.find_opt (fun (m : Member.t) -> m.Member.id = id) plan.members with
  | Some m -> m.Member.attachment
  | None -> invalid_arg "Anycast: unknown member"

let evaluate (plan : Planner.plan) ~home ~replicas ~clients =
  let g = plan.Planner.wan.Poc_topology.Wan.graph in
  let n = Graph.node_count g in
  let all_replicas = List.sort_uniq compare (home :: replicas) in
  List.iter
    (fun r -> if r < 0 || r >= n then invalid_arg "Anycast: unknown node")
    all_replicas;
  let enabled = Planner.backbone_enabled plan in
  (* One Dijkstra per replica gives latency from every client node. *)
  let distances =
    List.map (fun r -> (r, fst (Paths.dijkstra ~enabled g r))) all_replicas
  in
  let home_dist =
    match List.assoc_opt home distances with
    | Some d -> d
    | None -> fst (Paths.dijkstra ~enabled g home)
  in
  let assignments = ref [] in
  let unreachable = ref [] in
  let any_sum = ref 0.0 and uni_sum = ref 0.0 and count = ref 0 in
  List.iter
    (fun client ->
      let node = attachment plan client in
      let best =
        List.fold_left
          (fun acc (r, dist) ->
            match acc with
            | Some (_, d) when d <= dist.(node) -> acc
            | _ when dist.(node) = infinity -> acc
            | _ -> Some (r, dist.(node)))
          None distances
      in
      match best with
      | None -> unreachable := client :: !unreachable
      | Some (replica, latency_ms) ->
        if home_dist.(node) = infinity then unreachable := client :: !unreachable
        else begin
          assignments := { client; replica; latency_ms } :: !assignments;
          any_sum := !any_sum +. latency_ms;
          uni_sum := !uni_sum +. home_dist.(node);
          incr count
        end)
    clients;
  let c = float_of_int (max 1 !count) in
  let mean_any = !any_sum /. c and mean_uni = !uni_sum /. c in
  {
    assignments = List.rev !assignments;
    mean_latency_ms = mean_any;
    mean_unicast_latency_ms = mean_uni;
    improvement =
      (if mean_uni > 0.0 then Float.max 0.0 (1.0 -. (mean_any /. mean_uni))
       else 0.0);
    unreachable = List.rev !unreachable;
  }
