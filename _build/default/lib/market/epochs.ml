module Prng = Poc_util.Prng
module Vcg = Poc_auction.Vcg
module Bid = Poc_auction.Bid
module Matrix = Poc_traffic.Matrix
module Planner = Poc_core.Planner

type bp_strategy = Truthful | Markup of float | Recallable of float

type config = {
  epochs : int;
  cost_trend : float;
  cost_volatility : float;
  demand_growth : float;
  strategies : (int * bp_strategy) list;
  seed : int;
}

let default_config =
  {
    epochs = 12;
    cost_trend = -0.02;
    cost_volatility = 0.05;
    demand_growth = 1.02;
    strategies = [];
    seed = 1;
  }

type epoch_result = {
  epoch : int;
  spend : float;
  price_per_gbps : float;
  selected_links : int;
  recalled_links : int;
  supplier_hhi : float;
  failed : bool;
}

let supplier_hhi (outcome : Vcg.outcome) =
  let payments =
    Array.to_list outcome.bp_results
    |> List.map (fun (r : Vcg.bp_result) -> r.payment)
    |> List.filter (fun p -> p > 0.0)
  in
  let total = List.fold_left ( +. ) 0.0 payments in
  if total <= 0.0 then 0.0
  else
    List.fold_left
      (fun acc p ->
        let share = p /. total in
        acc +. (share *. share))
      0.0 payments

let strategy_of config bp =
  match List.assoc_opt bp config.strategies with
  | Some s -> s
  | None -> Truthful

let run (plan : Planner.plan) config =
  if config.epochs <= 0 then invalid_arg "Epochs.run: epochs must be positive";
  if config.demand_growth <= 0.0 then invalid_arg "Epochs.run: bad demand growth";
  let rng = Prng.create config.seed in
  let base_problem = plan.Planner.problem in
  let n_bps = Array.length base_problem.Vcg.bids in
  (* Per-BP cost level, drifting each epoch. *)
  let cost_level = Array.make n_bps 1.0 in
  let results = ref [] in
  let matrix = ref plan.Planner.matrix in
  for epoch = 1 to config.epochs do
    (* Drift costs. *)
    for bp = 0 to n_bps - 1 do
      let noise =
        1.0 +. (config.cost_volatility *. ((2.0 *. Prng.float rng) -. 1.0))
      in
      cost_level.(bp) <-
        Float.max 0.05 (cost_level.(bp) *. (1.0 +. config.cost_trend) *. noise)
    done;
    (* Recalls: strategy-driven withdrawal of offered links. *)
    let recalled = Hashtbl.create 64 in
    Array.iteri
      (fun bp bid ->
        match strategy_of config bp with
        | Recallable fraction ->
          List.iter
            (fun id ->
              if Prng.bernoulli rng fraction then Hashtbl.replace recalled id ())
            (Bid.links bid)
        | Truthful | Markup _ -> ())
      base_problem.Vcg.bids;
    (* Epoch bids: cost level times strategy markup. *)
    let bids =
      Array.mapi
        (fun bp bid ->
          let markup =
            match strategy_of config bp with
            | Markup m -> 1.0 +. m
            | Truthful | Recallable _ -> 1.0
          in
          Bid.scale bid (cost_level.(bp) *. markup))
        base_problem.Vcg.bids
    in
    matrix := Matrix.scale !matrix config.demand_growth;
    let problem =
      {
        base_problem with
        Vcg.bids;
        demands = Matrix.undirected_pair_demands !matrix;
      }
    in
    let select ?(banned = fun _ -> false) p =
      Vcg.select_greedy
        ~banned:(fun id -> banned id || Hashtbl.mem recalled id)
        p
    in
    let volume = Matrix.total !matrix in
    (match Vcg.run ~select problem with
    | None ->
      results :=
        {
          epoch;
          spend = nan;
          price_per_gbps = nan;
          selected_links = 0;
          recalled_links = Hashtbl.length recalled;
          supplier_hhi = nan;
          failed = true;
        }
        :: !results
    | Some outcome ->
      results :=
        {
          epoch;
          spend = outcome.Vcg.total_payment;
          price_per_gbps =
            (if volume > 0.0 then outcome.Vcg.total_payment /. volume else 0.0);
          selected_links = List.length outcome.Vcg.selection.selected;
          recalled_links = Hashtbl.length recalled;
          supplier_hhi = supplier_hhi outcome;
          failed = false;
        }
        :: !results)
  done;
  List.rev !results
