lib/market/epochs.ml: Array Float Hashtbl List Poc_auction Poc_core Poc_traffic Poc_util
