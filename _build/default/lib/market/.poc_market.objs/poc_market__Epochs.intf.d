lib/market/epochs.mli: Poc_auction Poc_core
