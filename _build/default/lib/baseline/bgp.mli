(** Policy routing over the AS hierarchy (Gao–Rexford).

    Routes obey the standard export rules: routes learned from a peer
    or provider are re-exported only to customers; customer routes go
    to everyone.  Selection prefers customer routes over peer routes
    over provider routes, then shorter AS paths, then the lowest
    next-hop id (deterministic tie-break).  The result is the familiar
    valley-free routing. *)

type route_kind = Self | Via_customer | Via_peer | Via_provider

type route = {
  kind : route_kind;
  next_hop : int;
  as_path_len : int; (** hops to the destination (0 for Self) *)
}

type table = route option array
(** Indexed by source AS: the best route toward a fixed destination. *)

val routes_to : As_graph.t -> int -> table
(** [routes_to g dst] computes every AS's best route toward [dst]. *)

val as_path : As_graph.t -> src:int -> dst:int -> int list option
(** The AS-level path actually taken (inclusive of both ends), [None]
    if policy leaves [src] without a route to [dst]. *)

val reachable_pairs : As_graph.t -> int
(** Number of ordered AS pairs (src <> dst) with a policy-compliant
    route — under Gao-Rexford this can be less than n·(n−1) even on a
    connected topology. *)

val valley_free : As_graph.t -> int list -> bool
(** Check a path follows up* peer? down* (for property tests). *)
