(** Money flows in the traditional transit Internet.

    For a traffic matrix between stub ASes, traffic rides the BGP
    paths; every customer-provider edge crossed generates a transit
    charge (per Gbps per month, at the provider's posted rate), and
    peer-peer edges settle free.  Optionally, eyeball stubs levy a
    termination fee on content traffic entering their network — the
    practice the POC's terms-of-service forbid.  This is the
    comparator for the POC settlement examples and benches. *)

type params = {
  transit_price : int -> float;
      (** provider AS -> $/Gbps/month charged to its customers *)
  termination_fee : float;
      (** $/Gbps/month an eyeball stub charges the originating content
          stub; 0 under network neutrality *)
}

type transfer = { payer : int; payee : int; amount : float; reason : string }

type report = {
  transfers : transfer list;
  net : float array;        (** per AS: income − outlay *)
  undelivered : (int * int * float) list;
      (** demands with no policy-compliant route *)
  total_volume : float;     (** Gbps delivered *)
}

val settle :
  As_graph.t -> params -> demands:(int * int * float) list -> report
(** [settle g params ~demands] routes each [(src, dst, gbps)] demand
    over BGP paths and accumulates monthly transfers.  Demands must
    join distinct ASes. *)

val default_transit_price : As_graph.t -> int -> float
(** A simple posted-price schedule: tier-1s cheapest per Gbps, transit
    mid, stubs do not sell transit. *)

val conservation_check : report -> float
(** Σ net over all ASes — zero (up to float noise) because every
    transfer has a payer and a payee. *)
