lib/baseline/as_graph.ml: Array Fun Hashtbl List Poc_util Printf
