lib/baseline/poc_as.ml: Array As_graph Bgp Cashflow List Poc_util
