lib/baseline/as_graph.mli:
