lib/baseline/cashflow.ml: Array As_graph Bgp Hashtbl List Printf
