lib/baseline/cashflow.mli: As_graph
