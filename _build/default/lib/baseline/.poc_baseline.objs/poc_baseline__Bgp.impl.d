lib/baseline/bgp.ml: Array As_graph List Queue
