lib/baseline/poc_as.mli: As_graph
