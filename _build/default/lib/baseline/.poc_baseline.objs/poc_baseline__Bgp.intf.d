lib/baseline/bgp.mli: As_graph
