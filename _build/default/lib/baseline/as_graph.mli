(** A synthetic Autonomous-System hierarchy with business relationships.

    The status-quo comparator for the POC: tier-1 providers in a full
    peering mesh, mid-tier transit providers buying from them, and stub
    networks (eyeball LMP-like and content CSP-like) multi-homing to
    transits.  Edges carry customer-provider or peer-peer semantics,
    which drive both BGP route selection ({!Bgp}) and money flows
    ({!Cashflow}). *)

type kind =
  | Tier1
  | Transit
  | Eyeball_stub  (** consumes content; sells access to users *)
  | Content_stub  (** originates content/services *)

type relationship =
  | Customer_provider (** first AS pays the second *)
  | Peer_peer

type link = { a : int; b : int; rel : relationship }
(** For [Customer_provider], [a] is the customer and [b] the provider. *)

type t = {
  kinds : kind array;          (** AS index -> kind *)
  names : string array;
  links : link array;
  providers : int list array;  (** per AS: its transit providers *)
  customers : int list array;
  peers : int list array;
}

type params = {
  n_tier1 : int;
  n_transit : int;
  n_eyeball : int;
  n_content : int;
  transit_multihoming : int; (** providers per transit (max) *)
  stub_multihoming : int;    (** providers per stub (max) *)
  peering_prob : float;      (** transit-transit peering probability *)
}

val default_params : params

val generate : ?params:params -> seed:int -> unit -> t
(** Deterministic hierarchy; guarantees every AS has a path to a tier-1
    through providers and tier-1s form a full peer mesh. *)

val size : t -> int

val kind_name : kind -> string

val stubs : t -> int list
(** Indices of all stub ASes. *)

val is_stub : t -> int -> bool

val validate : t -> (unit, string) result
(** Structural checks: relationship arrays consistent with links, no
    self links, tier-1s have no providers, stubs have no customers. *)
