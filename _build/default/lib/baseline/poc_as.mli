(** Incremental deployability (Section 5): dropping a POC into the
    existing AS ecosystem.

    "While the POC is radically different from the status quo, it is
    incrementally deployable" — it starts as one more transit AS that
    stubs can multihome to, pays an incumbent for general access to
    everything it cannot reach, and wins traffic by being cheaper and
    closer (stub-POC-stub is a two-hop transit path).  This module
    splices a POC AS into an {!As_graph.t} and measures how much of
    the stub-to-stub traffic and transit spend it captures. *)

type integration = {
  graph : As_graph.t;
  poc_as : int;                 (** index of the new AS *)
  attached_stubs : int list;    (** stubs that multihomed to the POC *)
}

val integrate :
  ?attach_fraction:float -> seed:int -> As_graph.t -> integration
(** Add a POC transit AS: it buys general access from the first
    tier-1 (the paper's "pays one or more ISPs"), and a deterministic
    pseudo-random [attach_fraction] (default 1.0) of stubs add it as a
    provider.  The original graph is not modified. *)

type capture = {
  via_poc_gbps : float;     (** traffic whose BGP path crosses the POC *)
  total_gbps : float;
  capture_fraction : float;
  stub_outlay_before : float; (** Σ stub transit payments, status quo *)
  stub_outlay_after : float;
  savings_fraction : float;
}

val measure :
  As_graph.t ->
  integration ->
  demands:(int * int * float) list ->
  poc_price:float ->
  incumbent_price:(int -> float) ->
  capture
(** Settle the same demands on both graphs; the POC AS charges
    [poc_price] per Gbps (its break-even posted price), incumbents
    keep their schedule. *)
