module Prng = Poc_util.Prng

type kind = Tier1 | Transit | Eyeball_stub | Content_stub

type relationship = Customer_provider | Peer_peer

type link = { a : int; b : int; rel : relationship }

type t = {
  kinds : kind array;
  names : string array;
  links : link array;
  providers : int list array;
  customers : int list array;
  peers : int list array;
}

type params = {
  n_tier1 : int;
  n_transit : int;
  n_eyeball : int;
  n_content : int;
  transit_multihoming : int;
  stub_multihoming : int;
  peering_prob : float;
}

let default_params =
  {
    n_tier1 = 4;
    n_transit = 12;
    n_eyeball = 30;
    n_content = 10;
    transit_multihoming = 2;
    stub_multihoming = 2;
    peering_prob = 0.25;
  }

let kind_name = function
  | Tier1 -> "tier1"
  | Transit -> "transit"
  | Eyeball_stub -> "eyeball"
  | Content_stub -> "content"

let size t = Array.length t.kinds

let is_stub t i =
  match t.kinds.(i) with
  | Eyeball_stub | Content_stub -> true
  | Tier1 | Transit -> false

let stubs t =
  List.filter (is_stub t) (List.init (size t) Fun.id)

let generate ?(params = default_params) ~seed () =
  let p = params in
  if p.n_tier1 < 1 || p.n_transit < 1 then
    invalid_arg "As_graph.generate: need at least one tier1 and one transit";
  let rng = Prng.create seed in
  let n = p.n_tier1 + p.n_transit + p.n_eyeball + p.n_content in
  let kinds =
    Array.init n (fun i ->
        if i < p.n_tier1 then Tier1
        else if i < p.n_tier1 + p.n_transit then Transit
        else if i < p.n_tier1 + p.n_transit + p.n_eyeball then Eyeball_stub
        else Content_stub)
  in
  let names =
    Array.mapi
      (fun i k ->
        match k with
        | Tier1 -> Printf.sprintf "T1-%d" i
        | Transit -> Printf.sprintf "Transit-%d" i
        | Eyeball_stub -> Printf.sprintf "Eyeball-%d" i
        | Content_stub -> Printf.sprintf "Content-%d" i)
      kinds
  in
  let links = ref [] in
  let seen = Hashtbl.create 64 in
  let add_link a b rel =
    let key = (min a b, max a b) in
    if a <> b && not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      links := { a; b; rel } :: !links
    end
  in
  (* Tier-1 full peer mesh. *)
  for i = 0 to p.n_tier1 - 1 do
    for j = i + 1 to p.n_tier1 - 1 do
      add_link i j Peer_peer
    done
  done;
  let tier1s = Array.init p.n_tier1 Fun.id in
  let transits = Array.init p.n_transit (fun i -> p.n_tier1 + i) in
  (* Transits buy from 1..transit_multihoming tier-1s, and sometimes
     peer with each other. *)
  Array.iter
    (fun tr ->
      let count = 1 + Prng.int rng p.transit_multihoming in
      let provs = Prng.sample_without_replacement rng (min count p.n_tier1) tier1s in
      Array.iter (fun t1 -> add_link tr t1 Customer_provider) provs)
    transits;
  Array.iteri
    (fun i tr ->
      Array.iteri
        (fun j tr' ->
          if j > i && Prng.bernoulli rng p.peering_prob then
            add_link tr tr' Peer_peer)
        transits)
    transits;
  (* Stubs buy from transits (content stubs occasionally straight from
     a tier-1, like a big CSP). *)
  for s = p.n_tier1 + p.n_transit to n - 1 do
    let count = 1 + Prng.int rng p.stub_multihoming in
    let provs = Prng.sample_without_replacement rng (min count p.n_transit) transits in
    Array.iter (fun tr -> add_link s tr Customer_provider) provs;
    if kinds.(s) = Content_stub && Prng.bernoulli rng 0.3 then
      add_link s (Prng.pick rng tier1s) Customer_provider
  done;
  let links = Array.of_list (List.rev !links) in
  let providers = Array.make n [] in
  let customers = Array.make n [] in
  let peers = Array.make n [] in
  Array.iter
    (fun l ->
      match l.rel with
      | Customer_provider ->
        providers.(l.a) <- l.b :: providers.(l.a);
        customers.(l.b) <- l.a :: customers.(l.b)
      | Peer_peer ->
        peers.(l.a) <- l.b :: peers.(l.a);
        peers.(l.b) <- l.a :: peers.(l.b))
    links;
  { kinds; names; links; providers; customers; peers }

let validate t =
  let n = size t in
  let problem = ref None in
  let fail msg = if !problem = None then problem := Some msg in
  Array.iter
    (fun l ->
      if l.a = l.b then fail "self link";
      if l.a < 0 || l.a >= n || l.b < 0 || l.b >= n then fail "link out of range")
    t.links;
  Array.iteri
    (fun i k ->
      match k with
      | Tier1 -> if t.providers.(i) <> [] then fail "tier1 with a provider"
      | Transit -> if t.providers.(i) = [] then fail "transit without provider"
      | Eyeball_stub | Content_stub ->
        if t.customers.(i) <> [] then fail "stub with customers";
        if t.providers.(i) = [] then fail "stub without provider")
    t.kinds;
  (* Cross-check adjacency lists against the link array. *)
  let count_cp = Array.fold_left (fun acc l -> if l.rel = Customer_provider then acc + 1 else acc) 0 t.links in
  let sum_providers = Array.fold_left (fun acc l -> acc + List.length l) 0 t.providers in
  if count_cp <> sum_providers then fail "provider lists inconsistent with links";
  match !problem with None -> Ok () | Some msg -> Error msg
