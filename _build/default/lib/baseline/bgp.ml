type route_kind = Self | Via_customer | Via_peer | Via_provider

type route = { kind : route_kind; next_hop : int; as_path_len : int }

type table = route option array

let kind_rank = function
  | Self -> 0
  | Via_customer -> 1
  | Via_peer -> 2
  | Via_provider -> 3

let better a b =
  match b with
  | None -> true
  | Some b ->
    let ka = kind_rank a.kind and kb = kind_rank b.kind in
    ka < kb
    || (ka = kb && a.as_path_len < b.as_path_len)
    || (ka = kb && a.as_path_len = b.as_path_len && a.next_hop < b.next_hop)

(* Standard three-phase propagation (cf. Gill-Schapira-Goldberg's BGP
   simulation algorithm):
   1. customer routes climb provider edges from the destination;
   2. peers of any customer-routed AS pick up a peer route;
   3. routes descend provider->customer edges to everyone else. *)
let routes_to (g : As_graph.t) dst =
  let n = As_graph.size g in
  if dst < 0 || dst >= n then invalid_arg "Bgp.routes_to: unknown AS";
  let table : table = Array.make n None in
  table.(dst) <- Some { kind = Self; next_hop = dst; as_path_len = 0 };
  (* Phase 1: BFS along customer->provider edges.  A provider of an AS
     with a customer route (or of the destination) learns a customer
     route; shorter paths win, BFS order guarantees minimality. *)
  let queue = Queue.create () in
  Queue.push dst queue;
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    let len =
      match table.(x) with Some r -> r.as_path_len | None -> assert false
    in
    List.iter
      (fun p ->
        let candidate = { kind = Via_customer; next_hop = x; as_path_len = len + 1 } in
        match table.(p) with
        | None ->
          table.(p) <- Some candidate;
          Queue.push p queue
        | Some existing ->
          if better candidate (Some existing) then table.(p) <- Some candidate)
      g.providers.(x)
  done;
  (* Phase 2: one peer hop.  Peer routes are only accepted when no
     customer route exists, and are not re-exported to peers/providers. *)
  let peer_routes = ref [] in
  for x = 0 to n - 1 do
    match table.(x) with
    | Some { kind = Self | Via_customer; as_path_len; _ } ->
      List.iter
        (fun y ->
          let candidate =
            { kind = Via_peer; next_hop = x; as_path_len = as_path_len + 1 }
          in
          peer_routes := (y, candidate) :: !peer_routes)
        g.peers.(x)
    | Some { kind = Via_peer | Via_provider; _ } | None -> ()
  done;
  List.iter
    (fun (y, candidate) ->
      if better candidate table.(y) then table.(y) <- Some candidate)
    !peer_routes;
  (* Phase 3: provider routes descend to customers, propagating further
     downward.  Process by increasing path length for shortest paths. *)
  (* (queue-based relaxation; path lengths grow by 1 per hop) *)
  let pending = Queue.create () in
  for x = 0 to n - 1 do
    if table.(x) <> None then Queue.push x pending
  done;
  while not (Queue.is_empty pending) do
    let x = Queue.pop pending in
    match table.(x) with
    | None -> ()
    | Some r ->
      List.iter
        (fun c ->
          let candidate =
            { kind = Via_provider; next_hop = x; as_path_len = r.as_path_len + 1 }
          in
          if better candidate table.(c) then begin
            table.(c) <- Some candidate;
            Queue.push c pending
          end)
        g.customers.(x)
  done;
  table

let as_path g ~src ~dst =
  let table = routes_to g dst in
  let rec walk node acc guard =
    if guard > As_graph.size g then None
    else begin
      match table.(node) with
      | None -> None
      | Some { kind = Self; _ } -> Some (List.rev (node :: acc))
      | Some { next_hop; _ } -> walk next_hop (node :: acc) (guard + 1)
    end
  in
  walk src [] 0

let reachable_pairs g =
  let n = As_graph.size g in
  let count = ref 0 in
  for dst = 0 to n - 1 do
    let table = routes_to g dst in
    Array.iteri (fun src r -> if src <> dst && r <> None then incr count) table
  done;
  !count

let valley_free g path =
  (* Classify consecutive relationships and check up* peer? down*. *)
  let rel a b =
    if List.mem b g.As_graph.providers.(a) then `Up
    else if List.mem b g.As_graph.customers.(a) then `Down
    else if List.mem b g.As_graph.peers.(a) then `Peer
    else `None
  in
  let rec steps = function
    | [] | [ _ ] -> []
    | a :: (b :: _ as rest) -> rel a b :: steps rest
  in
  let moves = steps path in
  if List.mem `None moves then false
  else begin
    (* state machine: Up -> (Peer | Down); at most one Peer *)
    let rec check state = function
      | [] -> true
      | `Up :: rest -> if state = `Climbing then check `Climbing rest else false
      | `Peer :: rest -> if state = `Climbing then check `Descending rest else false
      | `Down :: rest -> check `Descending rest
      | `None :: _ -> false
    in
    check `Climbing moves
  end
