module Prng = Poc_util.Prng

type integration = {
  graph : As_graph.t;
  poc_as : int;
  attached_stubs : int list;
}

let integrate ?(attach_fraction = 1.0) ~seed (g : As_graph.t) =
  if attach_fraction < 0.0 || attach_fraction > 1.0 then
    invalid_arg "Poc_as.integrate: fraction out of [0,1]";
  let rng = Prng.create seed in
  let n = As_graph.size g in
  let poc_as = n in
  let kinds = Array.append g.As_graph.kinds [| As_graph.Transit |] in
  let names = Array.append g.As_graph.names [| "POC" |] in
  let attached =
    As_graph.stubs g
    |> List.filter (fun _ -> Prng.bernoulli rng attach_fraction)
  in
  (* POC buys general access from the first tier-1; attached stubs add
     the POC as a provider. *)
  let new_links =
    { As_graph.a = poc_as; b = 0; rel = As_graph.Customer_provider }
    :: List.map
         (fun s -> { As_graph.a = s; b = poc_as; rel = As_graph.Customer_provider })
         attached
  in
  let links = Array.append g.As_graph.links (Array.of_list new_links) in
  let grow arr extra = Array.append (Array.map (fun l -> l) arr) [| extra |] in
  let providers = grow g.As_graph.providers [ 0 ] in
  let customers = grow g.As_graph.customers attached in
  let peers = grow g.As_graph.peers [] in
  (* Register the new relationships on the pre-existing ASes (copy the
     rows first so the original graph is untouched). *)
  let providers = Array.copy providers and customers = Array.copy customers in
  List.iter
    (fun s -> providers.(s) <- poc_as :: providers.(s))
    attached;
  customers.(0) <- poc_as :: customers.(0);
  let graph =
    { As_graph.kinds; names; links; providers; customers; peers }
  in
  { graph; poc_as; attached_stubs = attached }

type capture = {
  via_poc_gbps : float;
  total_gbps : float;
  capture_fraction : float;
  stub_outlay_before : float;
  stub_outlay_after : float;
  savings_fraction : float;
}

let stub_outlay (g : As_graph.t) (report : Cashflow.report) =
  (* Stubs only pay (they have no transit customers); their outlay is
     minus their net. *)
  Array.to_list report.Cashflow.net
  |> List.mapi (fun i v -> (i, v))
  |> List.filter (fun (i, _) -> i < As_graph.size g && As_graph.is_stub g i)
  |> List.fold_left (fun acc (_, v) -> acc -. v) 0.0

let measure (before_g : As_graph.t) integration ~demands ~poc_price
    ~incumbent_price =
  let after_g = integration.graph in
  let price_after a =
    if a = integration.poc_as then poc_price else incumbent_price a
  in
  let before =
    Cashflow.settle before_g
      { Cashflow.transit_price = incumbent_price; termination_fee = 0.0 }
      ~demands
  in
  let after =
    Cashflow.settle after_g
      { Cashflow.transit_price = price_after; termination_fee = 0.0 }
      ~demands
  in
  (* Traffic crossing the POC: check each demand's path. *)
  let via_poc = ref 0.0 in
  let total = ref 0.0 in
  List.iter
    (fun (src, dst, gbps) ->
      total := !total +. gbps;
      match Bgp.as_path after_g ~src ~dst with
      | Some path when List.mem integration.poc_as path ->
        via_poc := !via_poc +. gbps
      | Some _ | None -> ())
    demands;
  let outlay_before = stub_outlay before_g before in
  let outlay_after = stub_outlay before_g after in
  {
    via_poc_gbps = !via_poc;
    total_gbps = !total;
    capture_fraction = (if !total > 0.0 then !via_poc /. !total else 0.0);
    stub_outlay_before = outlay_before;
    stub_outlay_after = outlay_after;
    savings_fraction =
      (if outlay_before > 0.0 then
         (outlay_before -. outlay_after) /. outlay_before
       else 0.0);
  }
