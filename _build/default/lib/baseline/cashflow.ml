type params = {
  transit_price : int -> float;
  termination_fee : float;
}

type transfer = { payer : int; payee : int; amount : float; reason : string }

type report = {
  transfers : transfer list;
  net : float array;
  undelivered : (int * int * float) list;
  total_volume : float;
}

let default_transit_price (g : As_graph.t) a =
  match g.kinds.(a) with
  | As_graph.Tier1 -> 400.0
  | As_graph.Transit -> 700.0
  | As_graph.Eyeball_stub | As_graph.Content_stub -> infinity

let relationship (g : As_graph.t) a b =
  if List.mem b g.providers.(a) then `My_provider
  else if List.mem b g.customers.(a) then `My_customer
  else if List.mem b g.peers.(a) then `My_peer
  else `None

let settle g params ~demands =
  let n = As_graph.size g in
  let transfers = ref [] in
  let net = Array.make n 0.0 in
  let undelivered = ref [] in
  let total_volume = ref 0.0 in
  let pay payer payee amount reason =
    if amount > 0.0 then begin
      transfers := { payer; payee; amount; reason } :: !transfers;
      net.(payer) <- net.(payer) -. amount;
      net.(payee) <- net.(payee) +. amount
    end
  in
  (* Cache per-destination tables: demands often share destinations. *)
  let tables = Hashtbl.create 16 in
  let table_for dst =
    match Hashtbl.find_opt tables dst with
    | Some t -> t
    | None ->
      let t = Bgp.routes_to g dst in
      Hashtbl.replace tables dst t;
      t
  in
  List.iter
    (fun (src, dst, gbps) ->
      if src = dst then invalid_arg "Cashflow.settle: self demand";
      if gbps < 0.0 then invalid_arg "Cashflow.settle: negative demand";
      let table = table_for dst in
      let rec walk node acc guard =
        if guard > n then None
        else begin
          match table.(node) with
          | None -> None
          | Some { Bgp.kind = Bgp.Self; _ } -> Some (List.rev (node :: acc))
          | Some { Bgp.next_hop; _ } -> walk next_hop (node :: acc) (guard + 1)
        end
      in
      match walk src [] 0 with
      | None -> undelivered := (src, dst, gbps) :: !undelivered
      | Some path ->
        total_volume := !total_volume +. gbps;
        let rec charge = function
          | [] | [ _ ] -> ()
          | a :: (b :: _ as rest) ->
            (match relationship g a b with
            | `My_provider ->
              pay a b (gbps *. params.transit_price b)
                (Printf.sprintf "transit %s->%s" g.names.(a) g.names.(b))
            | `My_customer ->
              (* Traffic descending to a customer: the customer pays
                 its provider for the bits it receives. *)
              pay b a (gbps *. params.transit_price a)
                (Printf.sprintf "transit %s->%s" g.names.(b) g.names.(a))
            | `My_peer -> ()
            | `None -> invalid_arg "Cashflow.settle: path uses a non-edge");
            charge rest
        in
        charge path;
        (* Termination fee: the destination eyeball charges the
           originating content stub for delivery. *)
        if
          params.termination_fee > 0.0
          && g.kinds.(dst) = As_graph.Eyeball_stub
          && g.kinds.(src) = As_graph.Content_stub
        then
          pay src dst (gbps *. params.termination_fee)
            (Printf.sprintf "termination %s->%s" g.names.(src) g.names.(dst)))
    demands;
  {
    transfers = List.rev !transfers;
    net;
    undelivered = List.rev !undelivered;
    total_volume = !total_volume;
  }

let conservation_check r = Array.fold_left ( +. ) 0.0 r.net
