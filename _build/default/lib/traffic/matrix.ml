module Prng = Poc_util.Prng
module Wan = Poc_topology.Wan
module Site = Poc_topology.Site

type t = { demand : float array array }

let dim t = Array.length t.demand

let get t i j = t.demand.(i).(j)

let total t =
  Array.fold_left
    (fun acc row -> Array.fold_left ( +. ) acc row)
    0.0 t.demand

let max_entry t =
  Array.fold_left
    (fun acc row -> Array.fold_left Float.max acc row)
    0.0 t.demand

let scale t factor =
  { demand = Array.map (Array.map (fun x -> x *. factor)) t.demand }

let pair_demands t =
  let n = dim t in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if i <> j && t.demand.(i).(j) > 0.0 then
        acc := (i, j, t.demand.(i).(j)) :: !acc
    done
  done;
  !acc

let undirected_pair_demands t =
  let n = dim t in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      let d = t.demand.(i).(j) +. t.demand.(j).(i) in
      if d > 0.0 then acc := (i, j, d) :: !acc
    done
  done;
  !acc

let rescale_to demand target =
  let current =
    Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 demand
  in
  if current <= 0.0 then demand
  else begin
    let f = target /. current in
    Array.map (Array.map (fun x -> x *. f)) demand
  end

let gravity rng (wan : Wan.t) ~total_gbps ?(content_skew = 0.3) () =
  if total_gbps < 0.0 then invalid_arg "Matrix.gravity: negative total";
  let n = Array.length wan.poc_sites in
  let pop node = wan.sites.(wan.poc_sites.(node)).Site.population in
  (* Top-population quartile plays the role of content-heavy nodes. *)
  let order =
    Array.init n (fun i -> i) |> Array.to_list
    |> List.sort (fun a b -> compare (pop b) (pop a))
  in
  let content = Hashtbl.create 16 in
  List.iteri (fun rank node -> if rank < max 1 (n / 4) then Hashtbl.replace content node ()) order;
  let demand =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 0.0
            else begin
              let noise = 0.5 +. Prng.float rng in
              let base = pop i *. pop j *. noise in
              let skew =
                if Hashtbl.mem content i || Hashtbl.mem content j then
                  1.0 +. content_skew
                else 1.0 -. content_skew
              in
              base *. skew
            end))
  in
  { demand = rescale_to demand total_gbps }

let uniform (wan : Wan.t) ~total_gbps =
  let n = Array.length wan.poc_sites in
  let pairs = float_of_int (n * (n - 1)) in
  let per = if pairs = 0.0 then 0.0 else total_gbps /. pairs in
  { demand = Array.init n (fun i -> Array.init n (fun j -> if i = j then 0.0 else per)) }

let with_hotspots rng t ~count ~multiplier =
  if count < 0 || multiplier < 0.0 then invalid_arg "Matrix.with_hotspots";
  let n = dim t in
  if n < 2 then t
  else begin
    let before = total t in
    let demand = Array.map Array.copy t.demand in
    for _ = 1 to count do
      let i = Prng.int rng n in
      let j = Prng.int rng n in
      if i <> j then demand.(i).(j) <- demand.(i).(j) *. multiplier
    done;
    { demand = rescale_to demand before }
  end

let validate t =
  let n = dim t in
  let problem = ref None in
  Array.iteri
    (fun i row ->
      if Array.length row <> n then problem := Some "matrix is not square";
      Array.iteri
        (fun j x ->
          if not (Float.is_finite x) then problem := Some "non-finite demand"
          else if x < 0.0 then problem := Some "negative demand"
          else if i = j && x <> 0.0 then problem := Some "nonzero diagonal")
        row)
    t.demand;
  match !problem with None -> Ok () | Some msg -> Error msg

let pp ppf t =
  Format.fprintf ppf "traffic(%dx%d, total=%.1f Gbps, max=%.2f Gbps)" (dim t)
    (dim t) (total t) (max_entry t)
