lib/traffic/matrix.ml: Array Float Format Hashtbl List Poc_topology Poc_util
