lib/traffic/matrix.mli: Format Poc_topology Poc_util
