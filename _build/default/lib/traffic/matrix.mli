(** Traffic matrices between POC attachment points.

    The auction (Section 3.3) assumes "some upper-bound estimate of its
    traffic matrix".  We provide the standard synthetic choices: a
    gravity model driven by site populations (the default for
    Figure 2), a uniform matrix, and hotspot/scaling transforms for
    sensitivity sweeps.  Entries are demands in Gbps from row node to
    column node; diagonals are zero. *)

type t = { demand : float array array }

val dim : t -> int

val get : t -> int -> int -> float

val total : t -> float
(** Sum of all entries. *)

val max_entry : t -> float

val scale : t -> float -> t
(** Multiply every entry. *)

val pair_demands : t -> (int * int * float) list
(** All [(src, dst, gbps)] triples with positive demand. *)

val undirected_pair_demands : t -> (int * int * float) list
(** Demand aggregated per unordered pair [(i, j, d_ij + d_ji)] with
    [i < j]; this is what capacity planning on undirected links uses. *)

val gravity :
  Poc_util.Prng.t -> Poc_topology.Wan.t -> total_gbps:float ->
  ?content_skew:float -> unit -> t
(** [gravity rng wan ~total_gbps ()] builds a gravity-model matrix over
    the POC routers of [wan]: demand between nodes is proportional to
    the product of their site populations, with multiplicative noise.
    [content_skew] (default 0.3) moves that fraction of each node's
    outbound volume toward the top-population ("content-heavy") nodes,
    mimicking eyeball-to-content asymmetry.  The result sums to
    [total_gbps]. *)

val uniform : Poc_topology.Wan.t -> total_gbps:float -> t
(** Equal demand between every ordered pair. *)

val with_hotspots :
  Poc_util.Prng.t -> t -> count:int -> multiplier:float -> t
(** Amplify [count] random ordered pairs by [multiplier], then rescale
    so the total is unchanged. *)

val validate : t -> (unit, string) result
(** Checks: square, non-negative, zero diagonal, finite. *)

val pp : Format.formatter -> t -> unit
(** Dimension and aggregate volume; not the full matrix. *)
