lib/federation/federation.ml: Array Fun Hashtbl List Poc_auction Poc_core Poc_topology Poc_traffic Poc_util Printf
