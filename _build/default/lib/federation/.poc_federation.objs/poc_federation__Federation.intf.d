lib/federation/federation.mli: Poc_auction Poc_core Poc_topology
