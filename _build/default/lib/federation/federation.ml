module Wan = Poc_topology.Wan
module Site = Poc_topology.Site
module Matrix = Poc_traffic.Matrix
module Vcg = Poc_auction.Vcg
module Bid = Poc_auction.Bid
module Planner = Poc_core.Planner

type regional_poc = {
  region : int;
  nodes : int list;
  outcome : Vcg.outcome;
  intra_gbps : float;
  price_per_gbps : float;
}

type t = {
  assignment : int array;
  pocs : regional_poc array;
  interconnect : Vcg.selection;
  inter_gbps : float;
  federation_spend : float;
  single_poc_spend : float;
}

let partition (wan : Wan.t) ~regions =
  let n = Array.length wan.poc_sites in
  if regions < 1 || regions > n then invalid_arg "Federation.partition";
  (* Balanced bands along the x axis: sort routers by longitude and cut
     into equal slices. *)
  let order =
    List.init n Fun.id
    |> List.sort (fun a b ->
           compare
             wan.sites.(wan.poc_sites.(a)).Site.x
             wan.sites.(wan.poc_sites.(b)).Site.x)
  in
  let assignment = Array.make n 0 in
  List.iteri
    (fun rank node -> assignment.(node) <- rank * regions / n)
    order;
  assignment

(* Restrict a bid to a subset of its links. *)
let restrict_bid bid keep =
  let links = List.filter keep (Bid.links bid) in
  Bid.additive
    (List.map (fun id -> (id, Bid.single_price bid id)) links)

let build (plan : Planner.plan) ~regions =
  let wan = plan.Planner.wan in
  let assignment = partition wan ~regions in
  let base = plan.Planner.problem in
  let link_region id =
    let l = wan.Wan.links.(id) in
    let ra = assignment.(l.Wan.node_a) and rb = assignment.(l.Wan.node_b) in
    if ra = rb then `Internal ra else `Crossing
  in
  let demands = Matrix.undirected_pair_demands plan.Planner.matrix in
  let intra r =
    List.filter (fun (i, j, _) -> assignment.(i) = r && assignment.(j) = r) demands
  in
  let inter =
    List.filter (fun (i, j, _) -> assignment.(i) <> assignment.(j)) demands
  in
  let volume ds = List.fold_left (fun acc (_, _, d) -> acc +. d) 0.0 ds in
  (* Each regional POC auctions only the links internal to its region;
     its external-ISP virtual links are those internal to the region
     too. *)
  let regional r =
    let keep id = link_region id = `Internal r in
    let bids = Array.map (fun bid -> restrict_bid bid keep) base.Vcg.bids in
    let virtual_prices =
      List.filter (fun (id, _) -> keep id) base.Vcg.virtual_prices
    in
    let problem = { base with Vcg.bids; virtual_prices; demands = intra r } in
    let run_result =
      match intra r with
      | [] ->
        (* Nothing to carry: a trivial empty outcome, no auction. *)
        Some
          {
            Vcg.selection = { Vcg.selected = []; cost = 0.0 };
            virtual_cost = 0.0;
            bp_results =
              Array.mapi
                (fun bp _ ->
                  { Vcg.bp; selected_links = []; bid_cost = 0.0;
                    payment = 0.0; pob = 0.0 })
                bids;
            total_payment = 0.0;
          }
      | _ :: _ -> Vcg.run problem
    in
    match run_result with
    | None -> Error (Printf.sprintf "region %d cannot carry its traffic" r)
    | Some outcome ->
      let intra_gbps = volume (intra r) in
      Ok
        {
          region = r;
          nodes =
            List.filter
              (fun node -> assignment.(node) = r)
              (List.init (Array.length assignment) Fun.id);
          outcome;
          intra_gbps;
          price_per_gbps =
            (if intra_gbps > 0.0 then
               outcome.Vcg.total_payment /. intra_gbps
             else 0.0);
        }
  in
  let rec build_regions r acc =
    if r >= regions then Ok (List.rev acc)
    else begin
      match regional r with
      | Error msg -> Error msg
      | Ok poc -> build_regions (r + 1) (poc :: acc)
    end
  in
  match build_regions 0 [] with
  | Error msg -> Error msg
  | Ok pocs_list ->
    let pocs = Array.of_list pocs_list in
    (* Interconnect: inter-region demands ride the union of the
       regional backbones plus contracted region-crossing links; the
       federation only *pays extra* for the crossing links it picks.
       Model: one pseudo-owner offering every crossing link at its true
       cost, with the regional selections available for free (their
       cost is already recovered regionally). *)
    let regional_links = Hashtbl.create 256 in
    Array.iter
      (fun poc ->
        List.iter
          (fun id -> Hashtbl.replace regional_links id ())
          poc.outcome.Vcg.selection.Vcg.selected)
      pocs;
    let crossing_prices =
      Array.to_list wan.Wan.links
      |> List.filter_map (fun (l : Wan.logical_link) ->
             if link_region l.Wan.id = `Crossing then
               Some (l.Wan.id, l.Wan.true_cost)
             else None)
    in
    let free_regional =
      Hashtbl.fold (fun id () acc -> (id, 0.0) :: acc) regional_links []
    in
    let inter_problem =
      {
        base with
        Vcg.bids = [||];
        virtual_prices = crossing_prices @ free_regional;
        demands = inter;
      }
    in
    (match Vcg.select_greedy inter_problem with
    | None -> Error "interconnect cannot carry inter-region traffic"
    | Some interconnect ->
      let regional_spend =
        Array.fold_left
          (fun acc poc -> acc +. poc.outcome.Vcg.total_payment)
          0.0 pocs
      in
      let federation_spend = regional_spend +. interconnect.Vcg.cost in
      Ok
        {
          assignment;
          pocs;
          interconnect;
          inter_gbps = volume inter;
          federation_spend;
          single_poc_spend = plan.Planner.outcome.Vcg.total_payment;
        })

let fragmentation_overhead t =
  if t.single_poc_spend <= 0.0 then 0.0
  else (t.federation_spend /. t.single_poc_spend) -. 1.0

let render (plan : Planner.plan) t =
  ignore plan;
  let rows =
    Array.to_list t.pocs
    |> List.map (fun poc ->
           [
             Printf.sprintf "POC-%d" poc.region;
             string_of_int (List.length poc.nodes);
             Printf.sprintf "%.0f" poc.intra_gbps;
             string_of_int
               (List.length poc.outcome.Vcg.selection.Vcg.selected);
             Printf.sprintf "%.0f" poc.outcome.Vcg.total_payment;
             Printf.sprintf "%.2f" poc.price_per_gbps;
           ])
  in
  Poc_util.Table.render
    ~align:
      Poc_util.Table.[ Left; Right; Right; Right; Right; Right ]
    ~header:[ "POC"; "routers"; "Gbps"; "|SL|"; "spend $"; "$/Gbps" ]
    rows
