(** Several coexisting, interconnected POCs (Section 1.2).

    "There could be several coexisting (and interconnected) POCs, run
    by different entities but adopting the same basic principles
    (nonprofit, focusing on transit, enforcing network neutrality)."

    This module splits the substrate into geographic regions, runs one
    auction per regional POC over the links internal to its region,
    leases the region-crossing links under a federation-wide contract
    (the same role external ISPs play for a single POC), and routes
    inter-region traffic across the interconnect.  POCs peer
    settlement-free, like the tier-1 mesh — each recovers its own
    costs from its own members.

    The interesting outputs are the fragmentation overhead (a
    federation cannot pool link choices across regions, so it pays
    more than one global POC for the same matrix) and the per-region
    posted prices (sparse regions are more expensive per Gbps — the
    cross-subsidy question the paper raises about Australia's NBN). *)

type regional_poc = {
  region : int;
  nodes : int list;               (** POC routers in this region *)
  outcome : Poc_auction.Vcg.outcome;
  intra_gbps : float;             (** traffic volume it carries *)
  price_per_gbps : float;         (** regional break-even posted price *)
}

type t = {
  assignment : int array;         (** POC router -> region *)
  pocs : regional_poc array;
  interconnect : Poc_auction.Vcg.selection;
      (** contracted cross-region links carrying inter-region traffic *)
  inter_gbps : float;
  federation_spend : float;       (** Σ regional spends + interconnect *)
  single_poc_spend : float;       (** the one-POC baseline on the same inputs *)
}

val partition : Poc_topology.Wan.t -> regions:int -> int array
(** Geographic bands by site x-coordinate, balanced in router count.
    Requires [1 <= regions <= router count]. *)

val build :
  Poc_core.Planner.plan -> regions:int -> (t, string) result
(** Federate an already-planned single POC: re-auction each region
    over its internal links, select interconnect links for the
    inter-region demands, and compare spends.  [Error] when some
    region cannot carry its intra-region matrix or the interconnect
    cannot carry the inter-region matrix. *)

val fragmentation_overhead : t -> float
(** federation_spend / single_poc_spend − 1. *)

val render : Poc_core.Planner.plan -> t -> string
(** Per-region table: routers, traffic, spend, posted price. *)
