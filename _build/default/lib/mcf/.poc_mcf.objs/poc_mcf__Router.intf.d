lib/mcf/router.mli: Poc_graph
