lib/mcf/router.ml: Array Float Hashtbl List Option Poc_graph
