(** POC membership: who is attached to the fabric.

    Figure 1 of the paper: customers (users, enterprises) connect to
    Last-Mile Providers; LMPs connect to the POC; large content and
    service providers may attach directly.  External ISPs connect the
    POC to the rest of the Internet and provide virtual links. *)

type kind =
  | Lmp            (** last-mile provider: sells access, buys transit here *)
  | Direct_csp     (** large CSP attached straight to the POC *)
  | External_isp   (** connectivity to the non-POC Internet *)

type t = {
  id : int;
  name : string;
  kind : kind;
  attachment : int;      (** POC router (graph node) *)
  monthly_gbps : float;  (** sent + received across the POC *)
}

val kind_name : kind -> string

val validate : t -> node_count:int -> (unit, string) result
(** Attachment in range, non-negative usage, non-empty name. *)

val of_wan :
  Poc_topology.Wan.t -> Poc_traffic.Matrix.t -> ?csp_share:float -> unit ->
  t list
(** Derive a member population from the planning inputs: one LMP per
    POC router carrying that router's traffic; at each content-heavy
    router (top population quartile) a directly-attached CSP takes
    [csp_share] (default 0.5) of the router's volume; one external-ISP
    member per external ISP in the WAN.  Total member usage equals
    (twice) the traffic-matrix volume: every Gbps is sent by one
    member and received by another. *)
