lib/core/terms.ml: List Printf
