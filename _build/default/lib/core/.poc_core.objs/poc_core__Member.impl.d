lib/core/member.ml: Array Float Fun Hashtbl List Poc_topology Poc_traffic Printf
