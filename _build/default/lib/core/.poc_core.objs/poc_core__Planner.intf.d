lib/core/planner.mli: Member Poc_auction Poc_mcf Poc_topology Poc_traffic Poc_util
