lib/core/terms.mli:
