lib/core/settlement.ml: Array Float Hashtbl List Member Planner Poc_auction Poc_topology Poc_util Printf
