lib/core/planner.ml: Array Hashtbl List Member Poc_auction Poc_graph Poc_mcf Poc_topology Poc_traffic Poc_util
