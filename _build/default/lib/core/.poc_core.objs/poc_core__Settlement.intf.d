lib/core/settlement.mli: Planner
