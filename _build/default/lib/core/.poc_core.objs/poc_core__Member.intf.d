lib/core/member.mli: Poc_topology Poc_traffic
