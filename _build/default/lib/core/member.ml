module Wan = Poc_topology.Wan
module Site = Poc_topology.Site
module Matrix = Poc_traffic.Matrix

type kind = Lmp | Direct_csp | External_isp

type t = {
  id : int;
  name : string;
  kind : kind;
  attachment : int;
  monthly_gbps : float;
}

let kind_name = function
  | Lmp -> "LMP"
  | Direct_csp -> "CSP"
  | External_isp -> "ext-ISP"

let validate t ~node_count =
  if t.name = "" then Error "empty name"
  else if t.attachment < 0 || t.attachment >= node_count then
    Error "attachment out of range"
  else if t.monthly_gbps < 0.0 || not (Float.is_finite t.monthly_gbps) then
    Error "bad usage"
  else Ok ()

let of_wan (wan : Wan.t) matrix ?(csp_share = 0.5) () =
  if csp_share < 0.0 || csp_share > 1.0 then
    invalid_arg "Member.of_wan: csp_share out of [0,1]";
  let n = Array.length wan.poc_sites in
  if Matrix.dim matrix <> n then
    invalid_arg "Member.of_wan: matrix dimension mismatch";
  (* Node volume: everything sent plus everything received there. *)
  let volume = Array.make n 0.0 in
  List.iter
    (fun (i, j, d) ->
      volume.(i) <- volume.(i) +. d;
      volume.(j) <- volume.(j) +. d)
    (Matrix.pair_demands matrix);
  let pop node = wan.sites.(wan.poc_sites.(node)).Site.population in
  let content_nodes =
    let order =
      List.init n Fun.id |> List.sort (fun a b -> compare (pop b) (pop a))
    in
    let count = max 1 (n / 4) in
    List.filteri (fun rank _ -> rank < count) order
  in
  let is_content = Hashtbl.create 16 in
  List.iter (fun node -> Hashtbl.replace is_content node ()) content_nodes;
  let members = ref [] in
  let next_id = ref 0 in
  let add name kind attachment monthly_gbps =
    members := { id = !next_id; name; kind; attachment; monthly_gbps } :: !members;
    incr next_id
  in
  for node = 0 to n - 1 do
    let site = wan.sites.(wan.poc_sites.(node)) in
    if Hashtbl.mem is_content node then begin
      add (Printf.sprintf "LMP-%s" site.Site.name) Lmp node
        (volume.(node) *. (1.0 -. csp_share));
      add (Printf.sprintf "CSP-%s" site.Site.name) Direct_csp node
        (volume.(node) *. csp_share)
    end
    else add (Printf.sprintf "LMP-%s" site.Site.name) Lmp node volume.(node)
  done;
  Array.iter
    (fun (isp : Wan.external_isp) ->
      let attachment =
        match Array.to_list isp.attachments with
        | a :: _ -> a
        | [] -> 0
      in
      add isp.isp_name External_isp attachment 0.0)
    wan.external_isps;
  List.rev !members
