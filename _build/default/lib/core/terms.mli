(** Terms-of-service: the contractual network-neutrality conditions.

    Section 3.4 makes the peering conditions precise.  A POC-connected
    LMP must not:

    {ol
    {- differentially treat (prioritize or block) incoming traffic by
       source or application, or outgoing traffic by destination or
       application;}
    {- differentially provide CDN or application-enhancement services
       by source/destination;}
    {- differentially allow third parties to deploy such services for
       only a subset of traffic.}}

    Exceptions: security blocking and internal maintenance traffic.
    Openly-priced QoS tiers are explicitly allowed — the paper
    distinguishes {e service discrimination} (forbidden) from QoS
    (permitted when offered to everyone at posted prices).

    This module is the rule engine: it classifies observed forwarding
    or service decisions as compliant or violating. *)

type traffic_selector =
  | By_source of int          (** member id *)
  | By_destination of int
  | By_application of string
  | All_traffic

type action =
  | Prioritize of int  (** QoS class index, higher = better *)
  | Deprioritize
  | Block
  | Provide_cdn
  | Deny_cdn
  | Allow_third_party_service of string
  | Deny_third_party_service of string

type basis =
  | Posted_price of float (** openly offered tier anyone can buy *)
  | Security
  | Maintenance
  | Commercial_preference (** "we favor our own/paying partners" *)
  | No_basis

type observation = {
  actor : int;   (** member id of the LMP acting *)
  selector : traffic_selector;
  action : action;
  basis : basis;
}

type verdict = Compliant | Violation of string

val judge : observation -> verdict
(** Apply the three conditions with their exceptions. *)

val condition_violated : observation -> int option
(** Which numbered condition (1-3) an observation violates, if any. *)

val judge_all : observation list -> (observation * verdict) list

val violations : observation list -> (observation * string) list
(** Just the violating observations with reasons. *)
