type traffic_selector =
  | By_source of int
  | By_destination of int
  | By_application of string
  | All_traffic

type action =
  | Prioritize of int
  | Deprioritize
  | Block
  | Provide_cdn
  | Deny_cdn
  | Allow_third_party_service of string
  | Deny_third_party_service of string

type basis =
  | Posted_price of float
  | Security
  | Maintenance
  | Commercial_preference
  | No_basis

type observation = {
  actor : int;
  selector : traffic_selector;
  action : action;
  basis : basis;
}

type verdict = Compliant | Violation of string

let selective obs =
  match obs.selector with
  | By_source _ | By_destination _ | By_application _ -> true
  | All_traffic -> false

let excused obs =
  match obs.basis with
  | Security | Maintenance -> true
  | Posted_price price -> price >= 0.0 && not (selective obs)
  (* A posted price excuses differential service only when the offer
     itself is open to all traffic; a "posted price" available to one
     source is just discrimination with an invoice. *)
  | Commercial_preference | No_basis -> false

let condition_violated obs =
  let discriminatory = selective obs && not (excused obs) in
  match obs.action with
  | Prioritize _ | Deprioritize | Block ->
    (* Condition (i): differential forwarding treatment. *)
    if discriminatory then Some 1
    else if (not (selective obs)) && obs.action = Block
            && not (excused obs) then Some 1
      (* Blanket blocking without a security/maintenance excuse still
         violates the service obligation. *)
    else None
  | Provide_cdn | Deny_cdn ->
    (* Condition (ii): differential CDN / enhancement service. *)
    if discriminatory then Some 2 else None
  | Allow_third_party_service _ | Deny_third_party_service _ ->
    (* Condition (iii): third-party services for only some traffic. *)
    if discriminatory then Some 3 else None

let describe = function
  | 1 -> "condition (i): differential treatment of traffic"
  | 2 -> "condition (ii): differential CDN/enhancement service"
  | 3 -> "condition (iii): selective third-party service placement"
  | n -> Printf.sprintf "condition (%d)" n

let judge obs =
  match condition_violated obs with
  | None -> Compliant
  | Some c -> Violation (describe c)

let judge_all observations = List.map (fun o -> (o, judge o)) observations

let violations observations =
  List.filter_map
    (fun o ->
      match judge o with
      | Compliant -> None
      | Violation reason -> Some (o, reason))
    observations
