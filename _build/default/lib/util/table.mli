(** Plain-text table rendering for experiment output.

    Benches print paper-style rows; this keeps the formatting in one
    place so every experiment reports through the same look. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays out a monospace table with a separator
    under the header.  Rows shorter than the header are padded with
    empty cells; longer rows are truncated.  [align] defaults to
    left-aligned for every column. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-decimal rendering used across experiment tables
    (default 4 decimals). *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)
