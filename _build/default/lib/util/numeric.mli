(** Scalar numerical routines used by the economic model.

    The Section 4 model needs three primitives: maximizing a unimodal
    revenue curve (CSP and LMP pricing), finding the root of a
    first-order condition, and iterating a renegotiation map to its
    fixed point. *)

val maximize_unimodal :
  ?tol:float -> ?max_iter:int -> lo:float -> hi:float -> (float -> float) -> float
(** [maximize_unimodal ~lo ~hi f] returns the argmax of a unimodal [f]
    on [\[lo, hi\]] by golden-section search.  Accurate to [tol]
    (default [1e-9]) in the argument. *)

val bisect :
  ?tol:float -> ?max_iter:int -> lo:float -> hi:float -> (float -> float) -> float option
(** [bisect ~lo ~hi f] finds a root of [f] assuming a sign change over
    [\[lo, hi\]]; [None] when [f lo] and [f hi] share a sign. *)

val fixed_point :
  ?tol:float -> ?max_iter:int -> ?damping:float -> init:float -> (float -> float) ->
  (float * int) option
(** [fixed_point ~init g] iterates [x <- (1-d)*x + d*g(x)] (damping [d],
    default 0.5) until [|g(x) - x| < tol]; returns the point and the
    iteration count, or [None] if it fails to converge within
    [max_iter] (default 10_000). *)

val derivative : ?h:float -> (float -> float) -> float -> float
(** Central-difference numerical derivative. *)

val integrate : ?n:int -> lo:float -> hi:float -> (float -> float) -> float
(** Composite Simpson integration with [n] panels (default 1000,
    rounded up to even). *)
