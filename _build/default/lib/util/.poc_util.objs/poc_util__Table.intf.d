lib/util/table.mli:
