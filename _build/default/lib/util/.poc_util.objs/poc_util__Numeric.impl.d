lib/util/numeric.ml: Float
