lib/util/numeric.mli:
