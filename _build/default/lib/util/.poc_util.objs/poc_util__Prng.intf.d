lib/util/prng.mli:
