(** Small descriptive-statistics toolkit used by experiments and tests. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}
(** One-pass summary of a sample. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Population variance; 0 on arrays shorter than 2. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs q] with [q] in [\[0,1\]], by linear interpolation on the
    sorted sample.  Raises [Invalid_argument] on an empty array. *)

val summarize : float array -> summary
(** Full summary.  Raises [Invalid_argument] on an empty array. *)

val pp_summary : Format.formatter -> summary -> unit

val weighted_mean : (float * float) array -> float
(** [weighted_mean pairs] where each pair is [(weight, value)];
    0 when total weight is 0. *)

val histogram : bins:int -> float array -> (float * int) array
(** [histogram ~bins xs] is [(bin_lower_bound, count)] per bin over the
    sample range.  Requires [bins > 0] and a non-empty sample. *)
