type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let percentile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let mn = Array.fold_left Float.min xs.(0) xs in
  let mx = Array.fold_left Float.max xs.(0) xs in
  {
    count = n;
    mean = mean xs;
    stddev = stddev xs;
    min = mn;
    max = mx;
    p50 = percentile xs 0.5;
    p90 = percentile xs 0.9;
    p99 = percentile xs 0.99;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max

let weighted_mean pairs =
  let wsum = Array.fold_left (fun a (w, _) -> a +. w) 0.0 pairs in
  if wsum = 0.0 then 0.0
  else Array.fold_left (fun a (w, v) -> a +. (w *. v)) 0.0 pairs /. wsum

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.histogram: empty sample";
  let mn = Array.fold_left Float.min xs.(0) xs in
  let mx = Array.fold_left Float.max xs.(0) xs in
  let width = if mx = mn then 1.0 else (mx -. mn) /. float_of_int bins in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. mn) /. width) in
      let b = if b >= bins then bins - 1 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi (fun i c -> (mn +. (float_of_int i *. width), c)) counts
