let golden = (sqrt 5.0 -. 1.0) /. 2.0

let maximize_unimodal ?(tol = 1e-9) ?(max_iter = 500) ~lo ~hi f =
  if lo > hi then invalid_arg "Numeric.maximize_unimodal: lo > hi";
  let rec loop a b x1 x2 f1 f2 iter =
    if iter >= max_iter || b -. a < tol then (a +. b) /. 2.0
    else if f1 < f2 then begin
      let a = x1 in
      let x1 = x2 in
      let f1 = f2 in
      let x2 = a +. (golden *. (b -. a)) in
      loop a b x1 x2 f1 (f x2) (iter + 1)
    end
    else begin
      let b = x2 in
      let x2 = x1 in
      let f2 = f1 in
      let x1 = b -. (golden *. (b -. a)) in
      loop a b x1 x2 (f x1) f2 (iter + 1)
    end
  in
  let x1 = hi -. (golden *. (hi -. lo)) in
  let x2 = lo +. (golden *. (hi -. lo)) in
  loop lo hi x1 x2 (f x1) (f x2) 0

let bisect ?(tol = 1e-10) ?(max_iter = 200) ~lo ~hi f =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then Some lo
  else if fhi = 0.0 then Some hi
  else if flo *. fhi > 0.0 then None
  else begin
    let rec loop lo hi flo iter =
      let mid = (lo +. hi) /. 2.0 in
      if hi -. lo < tol || iter >= max_iter then Some mid
      else begin
        let fmid = f mid in
        if fmid = 0.0 then Some mid
        else if flo *. fmid < 0.0 then loop lo mid flo (iter + 1)
        else loop mid hi fmid (iter + 1)
      end
    in
    loop lo hi flo 0
  end

let fixed_point ?(tol = 1e-9) ?(max_iter = 10_000) ?(damping = 0.5) ~init g =
  let rec loop x iter =
    if iter >= max_iter then None
    else begin
      let gx = g x in
      if Float.abs (gx -. x) < tol then Some (gx, iter)
      else loop (((1.0 -. damping) *. x) +. (damping *. gx)) (iter + 1)
    end
  in
  loop init 0

let derivative ?(h = 1e-6) f x = (f (x +. h) -. f (x -. h)) /. (2.0 *. h)

let integrate ?(n = 1000) ~lo ~hi f =
  if hi <= lo then 0.0
  else begin
    let n = if n mod 2 = 0 then n else n + 1 in
    let h = (hi -. lo) /. float_of_int n in
    let rec sum i acc =
      if i >= n then acc
      else begin
        let x = lo +. (float_of_int i *. h) in
        let coeff = if i mod 2 = 1 then 4.0 else 2.0 in
        sum (i + 1) (acc +. (coeff *. f x))
      end
    in
    let interior = sum 1 0.0 in
    h /. 3.0 *. (f lo +. interior +. f hi)
  end
