type align = Left | Right

let fmt_float ?(decimals = 4) x = Printf.sprintf "%.*f" decimals x

let normalize width row =
  let n = List.length row in
  if n = width then row
  else if n > width then List.filteri (fun i _ -> i < width) row
  else row @ List.init (width - n) (fun _ -> "")

let render ?align ~header rows =
  let width = List.length header in
  let rows = List.map (normalize width) rows in
  let align =
    match align with
    | Some a -> normalize width (List.map (fun _ -> "") a) |> List.mapi (fun i _ ->
        match List.nth_opt a i with Some x -> x | None -> Left)
    | None -> List.init width (fun _ -> Left)
  in
  let cells = header :: rows in
  let col_width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 cells
  in
  let widths = List.init width col_width in
  let pad a w s =
    let missing = w - String.length s in
    if missing <= 0 then s
    else begin
      match a with
      | Left -> s ^ String.make missing ' '
      | Right -> String.make missing ' ' ^ s
    end
  in
  let render_row row =
    List.mapi (fun i cell -> pad (List.nth align i) (List.nth widths i) cell) row
    |> String.concat "  "
  in
  let sep = List.map (fun w -> String.make w '-') widths |> String.concat "  " in
  let body = List.map render_row rows in
  String.concat "\n" ((render_row header :: sep :: body) @ [ "" ])

let print ?align ~header rows = print_string (render ?align ~header rows)
