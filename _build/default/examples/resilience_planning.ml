(* What does resilience cost?  (Section 3.3 / Figure 2's constraints.)

   The POC's auction can demand that the leased link set survive
   failures.  This example plans the same traffic matrix under the
   three Figure 2 constraints and prices the difference, then verifies
   the resilient plan really does survive by failing every leased link
   in turn.

   Run with:  dune exec examples/resilience_planning.exe *)

module Planner = Poc_core.Planner
module Vcg = Poc_auction.Vcg
module Acc = Poc_auction.Acceptability
module Router = Poc_mcf.Router
module Matrix = Poc_traffic.Matrix

let () =
  let base =
    Planner.scaled_config ~sites:30 ~bps:8
      { Planner.default_config with Planner.seed = 7 }
  in
  let plans =
    List.filter_map
      (fun rule ->
        match Planner.build { base with Planner.rule } with
        | Ok plan -> Some (rule, plan)
        | Error msg ->
          Printf.printf "%s: %s\n" (Acc.name rule) msg;
          None)
      Acc.all
  in
  (match plans with
  | (_, plan) :: _ ->
    Printf.printf "substrate: %s\n\n" (Poc_topology.Wan.summary plan.Planner.wan)
  | [] -> ());
  print_endline "cost of resilience:";
  let baseline_cost =
    match plans with
    | (_, p) :: _ -> p.Planner.outcome.Vcg.selection.Vcg.cost
    | [] -> nan
  in
  List.iter
    (fun (rule, plan) ->
      let o = plan.Planner.outcome in
      Printf.printf "  %-22s %4d links  C(SL) $%9.0f  (%+.1f%% vs #1)\n"
        (Acc.name rule)
        (List.length o.Vcg.selection.Vcg.selected)
        o.Vcg.selection.Vcg.cost
        (100.0 *. (o.Vcg.selection.Vcg.cost -. baseline_cost) /. baseline_cost))
    plans;
  (* Verify the #2 plan the hard way: fail every leased link. *)
  match List.assoc_opt Acc.Single_link_failure plans with
  | None -> print_endline "\nno single-failure plan to verify"
  | Some plan ->
    let enabled = Planner.backbone_enabled plan in
    let demands = Matrix.undirected_pair_demands plan.Planner.matrix in
    let g = plan.Planner.wan.Poc_topology.Wan.graph in
    let base = Router.route ~enabled g ~demands in
    let failures = Router.used_edges base in
    let survived =
      List.for_all
        (fun failed_edge ->
          Router.survives_failure ~enabled g ~demands ~base ~failed_edge)
        failures
    in
    Printf.printf
      "\nfailure drill on the #2 plan: failed %d loaded links one at a\n\
       time; traffic matrix survived every single failure: %b\n"
      (List.length failures) survived;
    (* And show that the #1 plan does NOT pass the same drill. *)
    (match List.assoc_opt Acc.Handle_load plans with
    | None -> ()
    | Some cheap ->
      let enabled = Planner.backbone_enabled cheap in
      let base = Router.route ~enabled g ~demands in
      let ok =
        Router.survives_all_single_failures ~enabled g ~demands base
      in
      Printf.printf
        "the cheaper #1 plan under the same drill survives: %b (that is\n\
         what the extra money buys)\n"
        ok)
