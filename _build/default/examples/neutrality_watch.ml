(* Enforcing the terms-of-service (Sections 3.4 / 2.4.2).

   The POC's network-neutrality conditions are contractual, so the POC
   must detect violations from measurements.  We simulate a month of
   member traffic over the leased backbone, first with every LMP
   behaving, then with one LMP quietly throttling a rival CSP's video
   and another selling an openly-priced premium tier (which the terms
   allow).  The detector must flag the first and stay quiet about the
   second.

   Run with:  dune exec examples/neutrality_watch.exe *)

module Planner = Poc_core.Planner
module Member = Poc_core.Member
module Terms = Poc_core.Terms
module Fabric = Poc_sim.Fabric
module Detector = Poc_sim.Detector
module Prng = Poc_util.Prng

let () =
  let config =
    Planner.scaled_config ~sites:28 ~bps:8
      { Planner.default_config with Planner.seed = 31 }
  in
  match Planner.build config with
  | Error msg ->
    prerr_endline ("planning failed: " ^ msg);
    exit 1
  | Ok plan ->
    let flows = Fabric.synthesize_flows (Prng.create 5) plan ~flows_per_pair:3 in
    Printf.printf "simulating %d flows between %d members\n" (List.length flows)
      (List.length plan.Planner.members);
    (* Month 1: everyone behaves; premium QoS is openly priced. *)
    let honest =
      Fabric.run plan { Fabric.policies = []; premium_boost = 1.3 } flows
    in
    Printf.printf "\nmonth 1 (all neutral, open premium tier):\n";
    Printf.printf "  delivery ratio %.3f, max link utilization %.2f\n"
      (Fabric.delivery_ratio honest) honest.Fabric.max_utilization;
    Printf.printf "  violations flagged: %d\n"
      (List.length (Detector.audit honest));
    (* Month 2: one LMP throttles a rival CSP's traffic. *)
    let victim_csp =
      match
        List.find_opt
          (fun m -> m.Member.kind = Member.Direct_csp)
          plan.Planner.members
      with
      | Some m -> m
      | None -> failwith "no CSP member"
    in
    let cheater =
      (* an LMP that actually receives traffic from the victim *)
      match
        List.find_opt
          (fun f -> f.Fabric.src_member = victim_csp.Member.id)
          flows
      with
      | Some f ->
        List.find
          (fun m -> m.Member.id = f.Fabric.dst_member)
          plan.Planner.members
      | None -> failwith "victim CSP sends no traffic"
    in
    Printf.printf
      "\nmonth 2: %s throttles %s's video to 25%% (and the premium tier\n\
       stays up):\n"
      cheater.Member.name victim_csp.Member.name;
    let shaped =
      Fabric.run plan
        {
          Fabric.policies =
            [
              ( cheater.Member.id,
                Fabric.Throttle
                  { app = Some "video"; src = Some victim_csp.Member.id;
                    factor = 0.25 } );
            ];
          premium_boost = 1.3;
        }
        flows
    in
    Printf.printf "  delivery ratio %.3f\n" (Fabric.delivery_ratio shaped);
    let violations = Detector.audit shaped in
    Printf.printf "  violations flagged: %d\n" (List.length violations);
    List.iter
      (fun ((o : Terms.observation), reason) ->
        let actor =
          match
            List.find_opt (fun m -> m.Member.id = o.Terms.actor) plan.Planner.members
          with
          | Some m -> m.Member.name
          | None -> Printf.sprintf "member-%d" o.Terms.actor
        in
        Printf.printf "    %s — %s\n" actor reason)
      violations;
    print_endline
      "\nthe openly-priced premium tier is never flagged (QoS with posted\n\
       prices is allowed); the covert source-targeted throttle is, and\n\
       the POC can terminate that LMP's membership for breach of terms."
