(* Quickstart: stand up a Public Option for the Core end-to-end.

   Generates a synthetic wide-area substrate (cities, 10 bandwidth
   providers, POC routers where they colocate), estimates a traffic
   matrix, runs the strategy-proof VCG bandwidth auction, and prints
   who the POC pays, what members are billed, and how loaded the leased
   backbone is.

   Run with:  dune exec examples/quickstart.exe *)

module Planner = Poc_core.Planner
module Settlement = Poc_core.Settlement
module Vcg = Poc_auction.Vcg
module Wan = Poc_topology.Wan

let () =
  (* A laptop-friendly instance; bump ~sites/~bps toward the paper's
     scale (70 sites, 20 BPs) if you have a few minutes. *)
  let config =
    Planner.scaled_config ~sites:30 ~bps:8
      { Planner.default_config with Planner.seed = 2020 }
  in
  match Planner.build config with
  | Error msg ->
    prerr_endline ("planning failed: " ^ msg);
    exit 1
  | Ok plan ->
    Printf.printf "substrate: %s\n\n" (Wan.summary plan.Planner.wan);
    let outcome = plan.Planner.outcome in
    Printf.printf "auction selected %d links; C(SL) = $%.0f; POC spend = $%.0f\n"
      (List.length outcome.Vcg.selection.Vcg.selected)
      outcome.Vcg.selection.Vcg.cost outcome.Vcg.total_payment;
    print_endline "\nper-BP auction results (winners only):";
    Array.iter
      (fun (r : Vcg.bp_result) ->
        if r.Vcg.payment > 0.0 then
          Printf.printf "  %s  %3d links  bid $%8.0f  paid $%8.0f  PoB %.3f\n"
            plan.Planner.wan.Wan.bps.(r.Vcg.bp).Wan.bp_name
            (List.length r.Vcg.selected_links)
            r.Vcg.bid_cost r.Vcg.payment r.Vcg.pob)
      outcome.Vcg.bp_results;
    let ledger = Settlement.of_plan plan () in
    Printf.printf "\nposted member price: $%.2f per Gbps-month (break-even)\n"
      ledger.Settlement.usage_price;
    Printf.printf "POC net position: $%.4f (nonprofit: expect 0)\n"
      (Settlement.poc_net ledger);
    let util = Planner.utilization_summary plan in
    Printf.printf "\nbackbone utilization: %s\n"
      (Format.asprintf "%a" Poc_util.Stats.pp_summary util)
