(* The Netflix/Cogent/Comcast dispute (Section 2.1), replayed.

   In the traditional Internet, a content provider buys cheap transit
   (Cogent), the transit provider hands the traffic to the eyeball ISP
   (Comcast), and the eyeball — with a monopoly over its subscribers —
   demands payment to accept it: a termination fee.  We build exactly
   that triangle on the baseline substrate, price it, and then show the
   same relationship under the POC, whose terms-of-service ban the fee.

   Run with:  dune exec examples/netflix_dispute.exe *)

module As_graph = Poc_baseline.As_graph
module Bgp = Poc_baseline.Bgp
module Cashflow = Poc_baseline.Cashflow
module Demand = Poc_econ.Demand
module Pricing = Poc_econ.Pricing
module Welfare = Poc_econ.Welfare

(* AS 0,1 = tier-1 peers; AS 2 = Cogent-like transit; AS 3 =
   Comcast-like transit arm; AS 4 = Comcast eyeball; AS 5 = Netflix. *)
let network () =
  let kinds =
    [| As_graph.Tier1; As_graph.Tier1; As_graph.Transit; As_graph.Transit;
       As_graph.Eyeball_stub; As_graph.Content_stub |]
  in
  let names = [| "T1-A"; "T1-B"; "Cogent"; "ComcastBackbone"; "ComcastAccess"; "Netflix" |] in
  let links =
    [|
      { As_graph.a = 0; b = 1; rel = As_graph.Peer_peer };
      { As_graph.a = 2; b = 0; rel = As_graph.Customer_provider };
      { As_graph.a = 3; b = 1; rel = As_graph.Customer_provider };
      { As_graph.a = 2; b = 3; rel = As_graph.Peer_peer };
      { As_graph.a = 4; b = 3; rel = As_graph.Customer_provider };
      { As_graph.a = 5; b = 2; rel = As_graph.Customer_provider };
    |]
  in
  let n = Array.length kinds in
  let providers = Array.make n [] and customers = Array.make n [] in
  let peers = Array.make n [] in
  Array.iter
    (fun (l : As_graph.link) ->
      match l.As_graph.rel with
      | As_graph.Customer_provider ->
        providers.(l.As_graph.a) <- l.As_graph.b :: providers.(l.As_graph.a);
        customers.(l.As_graph.b) <- l.As_graph.a :: customers.(l.As_graph.b)
      | As_graph.Peer_peer ->
        peers.(l.As_graph.a) <- l.As_graph.b :: peers.(l.As_graph.a);
        peers.(l.As_graph.b) <- l.As_graph.a :: peers.(l.As_graph.b))
    links;
  { As_graph.kinds; names; links; providers; customers; peers }

let () =
  let g = network () in
  let netflix = 5 and viewers = 4 in
  (match Bgp.as_path g ~src:netflix ~dst:viewers with
  | Some path ->
    Printf.printf "video path: %s\n"
      (String.concat " -> " (List.map (fun a -> g.As_graph.names.(a)) path))
  | None -> print_endline "no route!");
  let volume = 800.0 (* Gbps of prime-time video *) in
  let price a =
    match g.As_graph.kinds.(a) with
    | As_graph.Tier1 -> 300.0
    | As_graph.Transit -> if a = 2 then 350.0 (* Cogent undercuts *) else 800.0
    | As_graph.Eyeball_stub | As_graph.Content_stub -> infinity
  in
  let settle fee =
    Cashflow.settle g
      { Cashflow.transit_price = price; termination_fee = fee }
      ~demands:[ (netflix, viewers, volume) ]
  in
  let neutral = settle 0.0 in
  let fee = 40.0 in
  let disputed = settle fee in
  Printf.printf "\nmonthly cash flows for %.0f Gbps of video:\n" volume;
  Printf.printf "  %-18s %14s %18s\n" "party" "neutral $" "with $40/Gbps fee";
  Array.iteri
    (fun a name ->
      if Float.abs neutral.Cashflow.net.(a) > 0.0
         || Float.abs disputed.Cashflow.net.(a) > 0.0 then
        Printf.printf "  %-18s %14.0f %18.0f\n" name neutral.Cashflow.net.(a)
          disputed.Cashflow.net.(a))
    g.As_graph.names;
  Printf.printf
    "\nthe fee moves $%.0f/month from Netflix to ComcastAccess — with no\n\
     capacity obligation attached.  Who wins the standoff is pure\n\
     bargaining power (Section 4.5):\n"
    (fee *. volume);
  (* The Section 4.5 lens: Comcast's fee demand depends on how many
     subscribers it would lose without Netflix. *)
  let d = Demand.Exponential 15.0 in
  let p = Pricing.monopoly_price d in
  List.iter
    (fun (label, churn) ->
      let t =
        Poc_econ.Bargaining.bilateral_fee ~price:p ~churn ~access_price:60.0
      in
      Printf.printf "  if %s (churn %.2f): bargained fee %+.2f per subscriber\n"
        label churn t)
    [ ("subscribers are captive", 0.02); ("subscribers would defect", 0.3) ];
  print_endline
    "\nunder the POC: Netflix attaches directly (or via an LMP), Comcast's\n\
     access arm peers freely as the terms-of-service require, each side\n\
     pays the POC for its own usage, and the termination-fee channel does\n\
     not exist.  Social welfare comparison for this service:";
  let t_uni = Pricing.unilateral_fee d in
  let p_uni = Pricing.price_given_fee d ~fee:t_uni in
  Printf.printf "  NN (POC terms):   SW = %.3f at price %.2f\n"
    (Welfare.social d ~price:p) p;
  Printf.printf "  UR (fee allowed): SW = %.3f at price %.2f (fee %.2f)\n"
    (Welfare.social d ~price:p_uni) p_uni t_uni
