(* Open CDN services at the edge (Section 3.2).

   LMPs may host CDN replicas — as long as the hosting is open to
   every CSP at a posted price.  This example measures what edge
   replicas do to the POC backbone (offload, utilization), then
   contrasts a compliant open-hosting policy with the selective deal
   the terms forbid (hosting only the incumbent's replicas).

   Run with:  dune exec examples/open_cdn.exe *)

module Planner = Poc_core.Planner
module Member = Poc_core.Member
module Fabric = Poc_sim.Fabric
module Cdn = Poc_sim.Cdn
module Prng = Poc_util.Prng

let () =
  let config =
    Planner.scaled_config ~sites:28 ~bps:8
      { Planner.default_config with Planner.seed = 17 }
  in
  match Planner.build config with
  | Error msg ->
    prerr_endline ("planning failed: " ^ msg);
    exit 1
  | Ok plan ->
    let flows = Fabric.synthesize_flows (Prng.create 3) plan ~flows_per_pair:3 in
    let csps =
      List.filter (fun m -> m.Member.kind = Member.Direct_csp) plan.Planner.members
    in
    let lmps =
      List.filter (fun m -> m.Member.kind = Member.Lmp) plan.Planner.members
    in
    (* Every CSP deploys replicas (70% hit rate) at every LMP that
       actually receives its traffic. *)
    let deployments =
      List.concat_map
        (fun (csp : Member.t) ->
          List.filter_map
            (fun (lmp : Member.t) ->
              let receives =
                List.exists
                  (fun f ->
                    f.Fabric.src_member = csp.Member.id
                    && f.Fabric.dst_member = lmp.Member.id)
                  flows
              in
              if receives then
                Some { Cdn.host_lmp = lmp.Member.id; csp = csp.Member.id;
                       hit_rate = 0.7 }
              else None)
            lmps)
        csps
    in
    let before = Fabric.run plan Fabric.neutral_config flows in
    let offload = Cdn.apply deployments flows in
    let after = Fabric.run plan Fabric.neutral_config offload.Cdn.served_flows in
    Printf.printf "replica deployments: %d (%d CSPs x hosting LMPs)\n"
      (List.length deployments) (List.length csps);
    Printf.printf "\n%-28s %12s %12s\n" "" "no CDN" "with CDN";
    Printf.printf "%-28s %12.0f %12.0f\n" "backbone offered Gbps"
      before.Fabric.offered_gbps after.Fabric.offered_gbps;
    Printf.printf "%-28s %12.2f %12.2f\n" "max link utilization"
      before.Fabric.max_utilization after.Fabric.max_utilization;
    Printf.printf "%-28s %12s %12.0f\n" "served at the edge (Gbps)" "-"
      offload.Cdn.offloaded_gbps;
    (* Policy check: open hosting vs a selective deal. *)
    let host = (List.hd lmps).Member.id in
    let applicants = List.map (fun (m : Member.t) -> m.Member.id) csps in
    let open_violations =
      Cdn.judge_policy ~host_lmp:host ~policy:(Cdn.Open_hosting 2500.0)
        ~applicants
    in
    let selective_violations =
      Cdn.judge_policy ~host_lmp:host
        ~policy:
          (Cdn.Selective_hosting { allowed = [ List.hd applicants ]; fee = 2500.0 })
        ~applicants
    in
    Printf.printf
      "\nterms-of-service check at %s:\n\
      \  open hosting at a posted $2500/month: %d violations\n\
      \  hosting only the first CSP's replicas: %d violations (condition iii)\n"
      (List.hd lmps).Member.name
      (List.length open_violations)
      (List.length selective_violations);
    print_endline
      "\nedge replicas relieve the backbone exactly as Section 2.4 observes\n\
       for today's Internet — the POC's contribution is that deploying\n\
       them cannot be a favor the LMP grants selectively."
