examples/bandwidth_market.ml: List Poc_core Poc_market Poc_topology Printf
