examples/resilience_planning.ml: List Poc_auction Poc_core Poc_mcf Poc_topology Poc_traffic Printf
