examples/netflix_dispute.ml: Array Float List Poc_baseline Poc_econ Printf String
