examples/open_cdn.ml: List Poc_core Poc_sim Poc_util Printf
