examples/federated_pocs.mli:
