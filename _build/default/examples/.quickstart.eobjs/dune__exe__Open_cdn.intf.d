examples/open_cdn.mli:
