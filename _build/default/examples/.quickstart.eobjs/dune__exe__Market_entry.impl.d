examples/market_entry.ml: Array Poc_econ Printf
