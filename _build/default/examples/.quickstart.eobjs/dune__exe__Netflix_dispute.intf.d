examples/netflix_dispute.mli:
