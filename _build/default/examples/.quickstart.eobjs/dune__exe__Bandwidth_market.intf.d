examples/bandwidth_market.mli:
