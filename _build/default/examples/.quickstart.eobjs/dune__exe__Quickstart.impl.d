examples/quickstart.ml: Array Format List Poc_auction Poc_core Poc_topology Poc_util Printf
