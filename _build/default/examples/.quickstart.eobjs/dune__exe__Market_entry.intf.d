examples/market_entry.mli:
