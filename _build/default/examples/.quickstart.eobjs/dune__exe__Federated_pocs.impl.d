examples/federated_pocs.ml: List Poc_auction Poc_core Poc_federation Poc_topology Printf
