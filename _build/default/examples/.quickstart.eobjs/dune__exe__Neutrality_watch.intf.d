examples/neutrality_watch.mli:
