examples/quickstart.mli:
