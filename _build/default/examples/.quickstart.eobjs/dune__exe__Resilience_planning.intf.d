examples/resilience_planning.mli:
