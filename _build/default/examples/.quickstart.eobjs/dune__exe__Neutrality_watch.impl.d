examples/neutrality_watch.ml: List Poc_core Poc_sim Poc_util Printf
