(* Market entry under NN vs UR (Section 4.5's incumbent-advantage
   result, from the entrant's point of view).

   A fiber startup LMP and a streaming startup CSP consider entering a
   market dominated by incumbents.  We evaluate their first-year
   economics under the POC's contractual network neutrality and under
   an unregulated regime with bargained termination fees.

   Run with:  dune exec examples/market_entry.exe *)

module Regime = Poc_econ.Regime
module Demand = Poc_econ.Demand

let economy =
  {
    Regime.csps =
      [|
        { Regime.csp_name = "BigStream (incumbent)"; demand = Demand.Uniform 24.0;
          popularity = 0.85 };
        { Regime.csp_name = "StartupTV (entrant)"; demand = Demand.Uniform 24.0;
          popularity = 0.08 };
      |];
    lmps =
      [|
        { Regime.lmp_name = "CableCo (incumbent)"; subscribers = 0.7;
          access_price = 65.0; loyalty = 0.9 };
        { Regime.lmp_name = "FiberStartup (entrant)"; subscribers = 0.05;
          access_price = 45.0; loyalty = 0.15 };
      |];
  }

let () =
  print_endline
    "Two identical services (same demand curve) — one popular incumbent,\n\
     one entrant — sold across an incumbent cable LMP and a fiber\n\
     startup LMP.\n";
  let show regime =
    let o = Regime.evaluate economy regime in
    Printf.printf "=== %s ===\n" (Regime.regime_name regime);
    Array.iter
      (fun (c : Regime.csp_outcome) ->
        Printf.printf
          "  %-24s price %6.2f | fee@CableCo %6.2f | fee@Fiber %6.2f | profit %6.3f\n"
          c.Regime.csp.Regime.csp_name c.Regime.price c.Regime.fees.(0)
          c.Regime.fees.(1) c.Regime.csp_profit)
      o.Regime.per_csp;
    Printf.printf "  social welfare %.3f, consumer welfare %.3f\n\n"
      o.Regime.total_social o.Regime.total_consumer;
    o
  in
  let nn = show Regime.Nn in
  let ur = show Regime.Ur_bargained in
  (* The entrant-vs-incumbent margins. *)
  let profit regime_outcome i =
    regime_outcome.Regime.per_csp.(i).Regime.csp_profit
  in
  let ratio o = profit o 1 /. profit o 0 in
  Printf.printf
    "entrant CSP's profit relative to the incumbent CSP:\n\
    \  under NN: %.3f   under UR: %.3f\n"
    (ratio nn) (ratio ur);
  let fee_gap o =
    let c = o.Regime.per_csp.(1) in
    (* what the entrant CSP pays the incumbent LMP vs the entrant LMP *)
    (c.Regime.fees.(0), c.Regime.fees.(1))
  in
  let inc_fee, ent_fee = fee_gap ur in
  Printf.printf
    "\nunder UR the entrant CSP pays the incumbent LMP %.2f but the fiber\n\
     startup only %.2f: the incumbent LMP's captive subscribers are\n\
     leverage (its customers don't leave when a niche service is\n\
     dropped), so it extracts more — and the entrant LMP, which needs\n\
     every service to attract users, collects less.  Both entrants are\n\
     structurally disadvantaged; under the POC's NN terms neither fee\n\
     exists.\n"
    inc_fee ent_fee
