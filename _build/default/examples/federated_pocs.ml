(* Several coexisting, interconnected POCs (Section 1.2).

   The paper allows for "several coexisting (and interconnected) POCs,
   run by different entities but adopting the same basic principles".
   This example splits the substrate into two and three regional POCs,
   re-runs each region's auction, prices the interconnect, and shows
   the two costs of federation: regional price divergence (the NBN
   cross-subsidy question) and fragmentation overhead.

   Run with:  dune exec examples/federated_pocs.exe *)

module Planner = Poc_core.Planner
module Federation = Poc_federation.Federation

let () =
  let config =
    Planner.scaled_config ~sites:30 ~bps:8
      { Planner.default_config with Planner.seed = 23 }
  in
  match Planner.build config with
  | Error msg ->
    prerr_endline ("planning failed: " ^ msg);
    exit 1
  | Ok plan ->
    Printf.printf "substrate: %s\n" (Poc_topology.Wan.summary plan.Planner.wan);
    Printf.printf "single POC spend: $%.0f\n"
      plan.Planner.outcome.Poc_auction.Vcg.total_payment;
    List.iter
      (fun regions ->
        match Federation.build plan ~regions with
        | Error msg -> Printf.printf "\n%d regions: %s\n" regions msg
        | Ok f ->
          Printf.printf "\n=== %d regional POCs ===\n" regions;
          print_string (Federation.render plan f);
          Printf.printf
            "interconnect: %d contracted cross-region links, $%.0f/month\n"
            (List.length f.Federation.interconnect.Poc_auction.Vcg.selected)
            f.Federation.interconnect.Poc_auction.Vcg.cost;
          Printf.printf "federation total: $%.0f (%+.1f%% vs single POC)\n"
            f.Federation.federation_spend
            (100.0 *. Federation.fragmentation_overhead f))
      [ 2; 3 ];
    print_endline
      "\nregional nonprofits can coexist — at the price of some pooling\n\
       efficiency and visibly different regional rates, which is the\n\
       trade the paper's single-global-POC design avoids."
