(* E2 — link withholding (Section 3.3's collusion discussion).

   "If the BPs can guess in advance what the set SL is, they can decide
   to not offer any links not in this set without changing their own
   payoff, but possibly changing that of others."  We withhold each of
   the three largest BPs' unselected links in turn, then all BPs
   together, and report the payment deltas. *)

module Planner = Poc_core.Planner
module Vcg = Poc_auction.Vcg
module Collusion = Poc_auction.Collusion
module Wan = Poc_topology.Wan
module Table = Poc_util.Table

let run ~scale ~seed =
  Common.header
    (Printf.sprintf "E2 — link-withholding (collusion) experiment (%s scale)"
       (Common.scale_name scale));
  let config =
    (* The withholding reruns pay a full mechanism run each; a mid-size
       instance keeps the default bench brisk. *)
    match scale with
    | Common.Paper ->
      Common.plan_config ~scale ~seed ~rule:Poc_auction.Acceptability.Handle_load
    | Common.Quick ->
      Planner.scaled_config ~sites:30 ~bps:8
        { Planner.default_config with Planner.seed;
          rule = Poc_auction.Acceptability.Handle_load }
  in
  match Planner.build config with
  | Error msg -> Printf.printf "plan failed: %s\n" msg
  | Ok plan ->
    let problem = plan.Planner.problem in
    let outcome = plan.Planner.outcome in
    let total payments = Array.fold_left ( +. ) 0.0 payments in
    let top3 = Wan.bps_by_size plan.Planner.wan |> List.filteri (fun i _ -> i < 3) in
    let rows =
      List.filter_map
        (fun bp ->
          match
            Common.timed
              (Printf.sprintf "withhold BP-%02d" bp)
              (fun () -> Collusion.withhold_unselected problem outcome ~bp)
          with
          | None -> None
          | Some r ->
            let own_delta =
              r.Collusion.payment_after.(bp) -. r.Collusion.payment_before.(bp)
            in
            let others_delta =
              total r.Collusion.payment_after
              -. total r.Collusion.payment_before -. own_delta
            in
            Some
              [
                plan.Planner.wan.Wan.bps.(bp).Wan.bp_name;
                string_of_int (List.length r.Collusion.withheld_links);
                (if r.Collusion.selection_changed then "yes" else "no");
                Printf.sprintf "%+.0f" own_delta;
                Printf.sprintf "%+.0f" others_delta;
              ])
        top3
    in
    Table.print
      ~align:[ Table.Left; Table.Right; Table.Left; Table.Right; Table.Right ]
      ~header:
        [ "withholder"; "withheld"; "SL changed"; "own payment Δ$"; "others Δ$" ]
      rows;
    (match
       Common.timed "all BPs withhold" (fun () ->
           Collusion.all_withhold_unselected problem outcome)
     with
    | None -> print_endline "coordinated withholding broke feasibility"
    | Some r ->
      let before = total r.Collusion.payment_before in
      let after = total r.Collusion.payment_after in
      Printf.printf
        "\ncoordinated withholding (all BPs): POC payments %.0f -> %.0f (%+.1f%%)\n"
        before after
        (100.0 *. (after -. before) /. before));
    print_endline
      "paper shape: a lone withholder's own payment is (near) unchanged;\n\
       rivals' payments weakly rise; coordinated withholding raises the\n\
       POC's total spend.  External virtual links cap the damage."
