(* E6 — incumbent advantage under bargained termination fees
   (Section 4.5): established LMPs (low churn) extract higher fees than
   entrant LMPs, and popular CSPs (high churn) pay less than niche
   entrants. *)

module Regime = Poc_econ.Regime
module Table = Poc_util.Table

let run ~scale ~seed =
  ignore scale;
  ignore seed;
  Common.header "E6 — incumbent advantage under UR-bargained fees";
  let economy = Regime.default_economy in
  let o = Regime.evaluate economy Regime.Ur_bargained in
  Common.subheader "per-LMP fee charged to each CSP ($/unit mass)";
  let lmp_names =
    Array.to_list economy.Regime.lmps
    |> List.map (fun l -> l.Regime.lmp_name)
  in
  let rows =
    Array.to_list o.Regime.per_csp
    |> List.map (fun (c : Regime.csp_outcome) ->
           c.Regime.csp.Regime.csp_name
           :: Common.fmt ~decimals:2 c.Regime.price
           :: (Array.to_list c.Regime.fees |> List.map (Common.fmt ~decimals:3)))
  in
  Table.print
    ~align:(Table.Left :: List.init (1 + List.length lmp_names) (fun _ -> Table.Right))
    ~header:("CSP" :: "price" :: lmp_names)
    rows;
  Common.subheader "advantage ratios";
  Array.iter
    (fun (c : Regime.csp_outcome) ->
      let incumbent = c.Regime.fees.(0) and entrant = c.Regime.fees.(2) in
      if entrant > 0.0 then
        Printf.printf
          "%-28s incumbent LMP extracts %.2fx the entrant's fee\n"
          c.Regime.csp.Regime.csp_name (incumbent /. entrant))
    o.Regime.per_csp;
  let popular = o.Regime.per_csp.(0) and niche = o.Regime.per_csp.(3) in
  Printf.printf
    "popular CSP (%s) pays avg fee %.3f of price; niche entrant (%s) pays %.3f\n"
    popular.Regime.csp.Regime.csp_name
    (popular.Regime.avg_fee /. popular.Regime.price)
    niche.Regime.csp.Regime.csp_name
    (niche.Regime.avg_fee /. niche.Regime.price);
  print_endline
    "paper shape: both asymmetries favor incumbents, which is the basis\n\
     for contractually banning termination fees in the POC's terms."
