(* E4 — double marginalization (Section 4.4, Lemma 1): the CSP's
   revenue-maximizing price p*(t) rises with the termination fee t,
   dragging social welfare down monotonically. *)

module Demand = Poc_econ.Demand
module Pricing = Poc_econ.Pricing
module Welfare = Poc_econ.Welfare
module Table = Poc_util.Table

let fees = [ 0.0; 1.0; 2.0; 4.0; 6.0; 8.0; 10.0 ]

let run ~scale ~seed =
  ignore scale;
  ignore seed;
  Common.header "E4 — double marginalization: p*(t) and SW(t) series";
  List.iter
    (fun d ->
      Common.subheader (Demand.name d);
      let rows =
        List.map
          (fun t ->
            let p = Pricing.price_given_fee d ~fee:t in
            [
              Common.fmt ~decimals:1 t;
              Common.fmt ~decimals:3 p;
              Common.fmt ~decimals:4 (Demand.demand d p);
              Common.fmt ~decimals:3 (Welfare.social d ~price:p);
              Common.fmt ~decimals:3 (Pricing.csp_revenue d ~price:p ~fee:t);
              Common.fmt ~decimals:3 (t *. Demand.demand d p);
            ])
          fees
      in
      Table.print
        ~align:
          [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
            Table.Right ]
        ~header:[ "fee t"; "p*(t)"; "D(p*)"; "SW"; "CSP rev"; "LMP rev" ]
        rows)
    Demand.all_families;
  print_endline
    "paper shape: p*(t) strictly increasing in t for every family\n\
     (Lemma 1); social welfare strictly decreasing."
