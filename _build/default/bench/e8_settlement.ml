(* E8 — settlement and budget balance (Sections 3.2 and 3.4): the POC
   ledger conserves money and breaks even, and the same workload priced
   through the traditional transit Internet shows the cash-flow
   difference (including what termination fees would extract). *)

module Planner = Poc_core.Planner
module Settlement = Poc_core.Settlement
module Member = Poc_core.Member
module As_graph = Poc_baseline.As_graph
module Cashflow = Poc_baseline.Cashflow
module Prng = Poc_util.Prng
module Table = Poc_util.Table

let run ~scale ~seed =
  Common.header "E8 — settlement: POC ledger vs traditional transit";
  let config =
    Common.plan_config ~scale ~seed ~rule:Poc_auction.Acceptability.Handle_load
  in
  match Planner.build config with
  | Error msg -> Printf.printf "plan failed: %s\n" msg
  | Ok plan ->
    let ledger = Settlement.of_plan plan () in
    Common.subheader "POC ledger";
    Printf.printf "monthly POC spend:    $%.0f\n" (Planner.monthly_cost plan);
    Printf.printf "posted usage price:   $%.2f per Gbps-month\n"
      ledger.Settlement.usage_price;
    Printf.printf "POC net (nonprofit):  $%.4f\n" (Settlement.poc_net ledger);
    Printf.printf "ledger conservation:  $%.4f (must be 0)\n"
      (Settlement.conservation ledger);
    let lmp_count =
      List.length
        (List.filter (fun m -> m.Member.kind = Member.Lmp) plan.Planner.members)
    in
    let csp_count =
      List.length
        (List.filter
           (fun m -> m.Member.kind = Member.Direct_csp)
           plan.Planner.members)
    in
    Printf.printf "members billed:       %d LMPs, %d direct CSPs\n" lmp_count
      csp_count;
    print_endline "";
    print_string (Settlement.render plan ledger);
    (* Traditional comparator: same aggregate volume between stubs of a
       synthetic AS hierarchy, with and without termination fees. *)
    Common.subheader "traditional Internet comparator (same volume)";
    let g = As_graph.generate ~seed () in
    let rng = Prng.create (seed + 1) in
    let stubs = Array.of_list (As_graph.stubs g) in
    let volume = Poc_traffic.Matrix.total plan.Planner.matrix in
    let demands =
      (* Spread the volume over 200 random content->eyeball pairs. *)
      let per = volume /. 200.0 in
      List.init 200 (fun _ ->
          let rec pick () =
            let a = Prng.pick rng stubs and b = Prng.pick rng stubs in
            if a = b then pick () else (a, b, per)
          in
          pick ())
    in
    let price = Cashflow.default_transit_price g in
    let neutral =
      Cashflow.settle g { Cashflow.transit_price = price; termination_fee = 0.0 }
        ~demands
    in
    let with_fees =
      Cashflow.settle g
        { Cashflow.transit_price = price; termination_fee = 25.0 }
        ~demands
    in
    let content_net (r : Cashflow.report) =
      Array.to_list r.Cashflow.net
      |> List.mapi (fun i v -> (i, v))
      |> List.filter (fun (i, _) -> g.As_graph.kinds.(i) = As_graph.Content_stub)
      |> List.fold_left (fun acc (_, v) -> acc +. v) 0.0
    in
    Table.print
      ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ~header:[ "scenario"; "delivered Gbps"; "content stubs net $"; "conservation" ]
      [
        [
          "transit, neutral";
          Printf.sprintf "%.0f" neutral.Cashflow.total_volume;
          Printf.sprintf "%.0f" (content_net neutral);
          Printf.sprintf "%.1e" (Cashflow.conservation_check neutral);
        ];
        [
          "transit + $25/Gbps termination fees";
          Printf.sprintf "%.0f" with_fees.Cashflow.total_volume;
          Printf.sprintf "%.0f" (content_net with_fees);
          Printf.sprintf "%.1e" (Cashflow.conservation_check with_fees);
        ];
      ];
    Printf.printf
      "termination fees extract $%.0f/month from content providers without\n\
       any corresponding capacity obligation — the transfer the POC's\n\
       terms-of-service forbid.\n"
      (content_net neutral -. content_net with_fees)
