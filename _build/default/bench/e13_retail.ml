(* E13 (extension) — retail pricing on the last mile (Section 3.4):
   flat-rate pricing congests shared access capacity; usage pricing at
   the market-clearing level allocates it to the users who value it
   most.  The welfare gap widens as capacity tightens. *)

module Retail = Poc_econ.Retail
module Table = Poc_util.Table

let users =
  [
    { Retail.satiation = 100.0; sensitivity = 0.02; mass = 60.0 };
    { Retail.satiation = 300.0; sensitivity = 0.01; mass = 30.0 };
    { Retail.satiation = 800.0; sensitivity = 0.005; mass = 10.0 };
  ]

let run ~scale ~seed =
  ignore scale;
  ignore seed;
  Common.header "E13 — last-mile retail pricing: flat vs usage vs tiered";
  let satiation =
    List.fold_left (fun acc u -> acc +. (u.Retail.mass *. u.Retail.satiation))
      0.0 users
  in
  Printf.printf "population satiation demand: %.0f units\n\n" satiation;
  let rows =
    List.map
      (fun frac ->
        let capacity = frac *. satiation in
        let p = Retail.market_clearing_price ~users ~capacity in
        let flat = Retail.equilibrium ~users ~capacity Retail.Flat in
        let usage = Retail.equilibrium ~users ~capacity (Retail.Usage p) in
        let tiered =
          Retail.equilibrium ~users ~capacity
            (Retail.Tiered { allowance = 80.0; overage = p })
        in
        [
          Printf.sprintf "%.0f%%" (100.0 *. frac);
          Printf.sprintf "%.3f" p;
          Printf.sprintf "%.2f" flat.Retail.quality;
          Printf.sprintf "%.0f" flat.Retail.welfare;
          Printf.sprintf "%.0f" usage.Retail.welfare;
          Printf.sprintf "%.0f" tiered.Retail.welfare;
          Printf.sprintf "%+.1f%%"
            (100.0 *. (usage.Retail.welfare -. flat.Retail.welfare)
            /. flat.Retail.welfare);
        ])
      [ 1.2; 0.8; 0.6; 0.4; 0.2 ]
  in
  Table.print
    ~align:Table.[ Right; Right; Right; Right; Right; Right; Right ]
    ~header:
      [ "capacity"; "clearing $"; "flat quality"; "W flat"; "W usage";
        "W tiered"; "usage gain" ]
    rows;
  print_endline
    "expected shape: at slack capacity the schemes coincide; as capacity\n\
     tightens, flat-rate quality collapses (tragedy of the last mile)\n\
     while market-clearing usage pricing holds welfare up — the paper's\n\
     argument for usage-based charging, without termination fees."
