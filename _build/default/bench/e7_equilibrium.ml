(* E7 — the renegotiation fixed point t = (p*(t) − <rc>)/2
   (Section 4.5, third model): convergence, the fee's dependence on
   <rc>, and the heavy-tail caveat found during this reproduction. *)

module Demand = Poc_econ.Demand
module Pricing = Poc_econ.Pricing
module Equilibrium = Poc_econ.Equilibrium
module Table = Poc_util.Table

let rcs = [ 0.0; 0.5; 1.0; 2.0; 4.0; 8.0 ]

let run ~scale ~seed =
  ignore scale;
  ignore seed;
  Common.header "E7 — renegotiation equilibrium t = (p*(t) - <rc>)/2";
  List.iter
    (fun d ->
      Common.subheader (Demand.name d);
      let rows =
        List.filter_map
          (fun rc ->
            match Equilibrium.solve_rc ~demand:d ~rc () with
            | None -> Some [ Common.fmt ~decimals:1 rc; "diverged"; ""; ""; "" ]
            | Some eq ->
              Some
                [
                  Common.fmt ~decimals:1 rc;
                  Common.fmt ~decimals:4 eq.Equilibrium.fee;
                  Common.fmt ~decimals:4 eq.Equilibrium.price;
                  string_of_int eq.Equilibrium.iterations;
                  Printf.sprintf "%.1e" eq.Equilibrium.residual;
                ])
          rcs
      in
      Table.print
        ~align:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
        ~header:[ "<rc>"; "fee t~"; "price p*(t~)"; "iters"; "residual" ]
        rows)
    Demand.all_families;
  Common.subheader "bargained vs unilateral fee (<rc> = 1)";
  List.iter
    (fun d ->
      match Equilibrium.solve_rc ~demand:d ~rc:1.0 () with
      | None -> ()
      | Some eq ->
        let uni = Pricing.unilateral_fee d in
        Printf.printf "%-28s bargained %.3f vs unilateral %.3f  (%s)\n"
          (Demand.name d) eq.Equilibrium.fee uni
          (if eq.Equilibrium.fee <= uni then "bargaining softer, as the paper expects"
           else "REVERSED: heavy tail escalates bargained fees"))
    Demand.all_families;
  print_endline
    "\npaper shape: the fixed point converges quickly for every family and\n\
     the fee falls with <rc>.  Reproduction finding: for Lomax (heavy\n\
     tail) demand the bargained equilibrium fee EXCEEDS the unilateral\n\
     fee — the paper's 'likely less' hedge is warranted."
