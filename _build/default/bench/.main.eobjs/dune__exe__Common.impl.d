bench/common.ml: Poc_core Poc_util Printf String Unix
