bench/e4_doublemarg.ml: Common List Poc_econ Poc_util
