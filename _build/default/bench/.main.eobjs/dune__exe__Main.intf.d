bench/main.mli:
