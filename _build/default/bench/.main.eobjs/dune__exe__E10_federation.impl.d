bench/e10_federation.ml: Common List Poc_auction Poc_core Poc_federation Printf
