bench/e5_bargain.ml: Common Float List Poc_econ Poc_util Printf
