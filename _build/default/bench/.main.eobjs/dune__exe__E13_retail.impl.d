bench/e13_retail.ml: Common List Poc_econ Poc_util Printf
