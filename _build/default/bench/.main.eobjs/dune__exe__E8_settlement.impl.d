bench/e8_settlement.ml: Array Common List Poc_auction Poc_baseline Poc_core Poc_traffic Poc_util Printf
