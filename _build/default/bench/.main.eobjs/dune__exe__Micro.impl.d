bench/micro.ml: Analyze Bechamel Benchmark Common Float Hashtbl List Poc_auction Poc_baseline Poc_core Poc_econ Poc_graph Poc_mcf Poc_topology Poc_traffic Poc_util Printf Staged Test Time Toolkit
