bench/e14_transition.ml: Array Common List Poc_baseline Poc_util Printf
