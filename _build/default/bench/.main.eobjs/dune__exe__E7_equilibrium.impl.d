bench/e7_equilibrium.ml: Common List Poc_econ Poc_util Printf
