bench/e2_collusion.ml: Array Common List Poc_auction Poc_core Poc_topology Poc_util Printf
