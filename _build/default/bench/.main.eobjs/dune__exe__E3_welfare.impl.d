bench/e3_welfare.ml: Common List Poc_econ Poc_util Printf
