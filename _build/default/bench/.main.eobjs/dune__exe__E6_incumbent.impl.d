bench/e6_incumbent.ml: Array Common List Poc_econ Poc_util Printf
