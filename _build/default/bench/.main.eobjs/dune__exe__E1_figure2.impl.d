bench/e1_figure2.ml: Array Common Format List Option Poc_auction Poc_core Poc_topology Poc_traffic Poc_util Printf
