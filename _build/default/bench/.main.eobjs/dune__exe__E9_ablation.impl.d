bench/e9_ablation.ml: Array Common List Poc_auction Poc_core Poc_graph Poc_mcf Poc_topology Poc_traffic Poc_util Printf
