bench/e12_services.ml: Common List Poc_auction Poc_core Poc_sim Poc_util Printf
