(* Shared configuration and formatting for the experiment harness. *)

module Planner = Poc_core.Planner

let header title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" bar title bar

let subheader title = Printf.printf "\n--- %s ---\n" title

(* Quick mode reproduces every experiment's shape in a couple of
   minutes; paper mode runs the full Figure 2 scale (20 BPs, ~4-5k
   offered links) and takes tens of minutes. *)
type scale = Quick | Paper

let scale_name = function Quick -> "quick" | Paper -> "paper"

let plan_config ~scale ~seed ~rule =
  let base = { Planner.default_config with Planner.seed; rule } in
  match scale with
  | Paper -> base
  | Quick -> Planner.scaled_config ~sites:44 ~bps:14 base

let timed label f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  Printf.printf "[%s: %.1fs]\n" label (Unix.gettimeofday () -. t0);
  result

let fmt = Poc_util.Table.fmt_float
