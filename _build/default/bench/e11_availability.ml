(* E11 (extension) — what Figure 2's constraints buy at runtime:
   traffic-weighted availability under stochastic link failures for
   plans selected under Constraints #1 and #2. *)

module Planner = Poc_core.Planner
module Availability = Poc_sim.Availability
module Acc = Poc_auction.Acceptability
module Vcg = Poc_auction.Vcg
module Table = Poc_util.Table

let run ~scale ~seed =
  Common.header "E11 — availability under link failures (#1 vs #2 plans)";
  let sim_config =
    { Availability.default_config with Availability.seed = seed + 1 }
  in
  let rows =
    List.filter_map
      (fun rule ->
        let config = Common.plan_config ~scale ~seed ~rule in
        match
          Common.timed (Acc.name rule) (fun () -> Planner.build config)
        with
        | Error msg ->
          Printf.printf "%s: %s\n" (Acc.name rule) msg;
          None
        | Ok plan ->
          let r = Availability.simulate plan sim_config in
          Some
            [
              Acc.name rule;
              Printf.sprintf "%.0f"
                plan.Planner.outcome.Vcg.selection.Vcg.cost;
              string_of_int r.Availability.failure_events;
              string_of_int r.Availability.max_concurrent_failures;
              Printf.sprintf "%.6f" r.Availability.availability;
              Printf.sprintf "%.4f" r.Availability.worst_fraction;
            ])
      [ Acc.Handle_load; Acc.Single_link_failure ]
  in
  Table.print
    ~align:
      Table.[ Left; Right; Right; Right; Right; Right ]
    ~header:
      [ "plan"; "C(SL) $"; "failures"; "max concurrent"; "availability";
        "worst fraction" ]
    rows;
  Printf.printf
    "(one simulated month, per-link MTBF %.0fh, MTTR %.0fh)\n"
    sim_config.Availability.mtbf_hours sim_config.Availability.mttr_hours;
  print_endline
    "expected shape: the #2 plan's availability is strictly higher and\n\
     its worst-case delivered fraction stays near 1.0 except under\n\
     overlapping failures — that is what its extra cost buys."
