(* E12 (extension) — Section 3.1/3.2 service offerings on the fabric:
   multicast delivery trees vs unicast, and open CDN offload. *)

module Planner = Poc_core.Planner
module Member = Poc_core.Member
module Fabric = Poc_sim.Fabric
module Multicast = Poc_sim.Multicast
module Cdn = Poc_sim.Cdn
module Prng = Poc_util.Prng
module Table = Poc_util.Table

let run ~scale ~seed =
  Common.header "E12 — fabric services: multicast trees and open CDN offload";
  let config =
    Common.plan_config ~scale ~seed ~rule:Poc_auction.Acceptability.Handle_load
  in
  match Planner.build config with
  | Error msg -> Printf.printf "plan failed: %s\n" msg
  | Ok plan ->
    let members = plan.Planner.members in
    let lmps = List.filter (fun m -> m.Member.kind = Member.Lmp) members in
    let csps = List.filter (fun m -> m.Member.kind = Member.Direct_csp) members in
    (* Multicast: a live event from each CSP to growing audiences. *)
    Common.subheader "multicast vs unicast (live stream, 5 Gbps)";
    (match csps with
    | [] -> print_endline "no CSP members"
    | csp :: _ ->
      let rows =
        List.map
          (fun audience ->
            let receivers =
              List.filteri (fun i _ -> i < audience) lmps
              |> List.map (fun m -> m.Member.id)
            in
            let c =
              Multicast.compare_unicast plan
                [ { Multicast.source = csp.Member.id; receivers; gbps = 5.0 } ]
            in
            [
              string_of_int audience;
              Printf.sprintf "%.0f" c.Multicast.unicast_link_gbps;
              Printf.sprintf "%.0f" c.Multicast.multicast_link_gbps;
              Printf.sprintf "%.1f%%" (100.0 *. c.Multicast.savings_fraction);
            ])
          [ 2; 5; 10; 20 ]
      in
      Table.print
        ~align:Table.[ Right; Right; Right; Right ]
        ~header:[ "receivers"; "unicast link-Gbps"; "tree link-Gbps"; "saved" ]
        rows);
    (* CDN offload sweep over hit rates. *)
    Common.subheader "open CDN offload vs hit rate";
    let flows = Fabric.synthesize_flows (Prng.create seed) plan ~flows_per_pair:2 in
    let rows =
      List.map
        (fun hit_rate ->
          let deployments =
            List.concat_map
              (fun (csp : Member.t) ->
                List.map
                  (fun (lmp : Member.t) ->
                    { Cdn.host_lmp = lmp.Member.id; csp = csp.Member.id;
                      hit_rate })
                  lmps)
              csps
          in
          let o = Cdn.apply deployments flows in
          let report = Fabric.run plan Fabric.neutral_config o.Cdn.served_flows in
          [
            Printf.sprintf "%.0f%%" (100.0 *. hit_rate);
            Printf.sprintf "%.0f" o.Cdn.offloaded_gbps;
            Printf.sprintf "%.0f" o.Cdn.backbone_gbps;
            Printf.sprintf "%.2f" report.Fabric.max_utilization;
          ])
        [ 0.0; 0.3; 0.6; 0.9 ]
    in
    Table.print
      ~align:Table.[ Right; Right; Right; Right ]
      ~header:[ "hit rate"; "edge Gbps"; "backbone Gbps"; "max util" ]
      rows;
    print_endline
      "expected shape: multicast savings grow with audience size;\n\
       CDN offload linearly relieves the backbone — and (Section 3.2)\n\
       both must be offered at posted prices open to every CSP."
