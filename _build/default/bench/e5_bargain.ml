(* E5 — bilateral Nash bargaining (Section 4.5): the negotiated fee
   t = (p − r·c)/2 falls as the LMP's churn exposure r rises, and can
   go negative when the LMP's disagreement loss dominates. *)

module Bargaining = Poc_econ.Bargaining
module Demand = Poc_econ.Demand
module Pricing = Poc_econ.Pricing
module Table = Poc_util.Table

let churns = [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.5; 0.7; 0.9 ]

let run ~scale ~seed =
  ignore scale;
  ignore seed;
  Common.header "E5 — Nash-bargained termination fee vs churn rate r";
  let access_price = 30.0 in
  Common.subheader
    (Printf.sprintf "fee (p - r*c)/2 at the NN price of each family (c = %.0f)"
       access_price);
  let prices =
    List.map (fun d -> (d, Pricing.monopoly_price d)) Demand.all_families
  in
  let rows =
    List.map
      (fun r ->
        Common.fmt ~decimals:2 r
        :: List.map
             (fun (_, p) ->
               Common.fmt ~decimals:3
                 (Bargaining.bilateral_fee ~price:p ~churn:r
                    ~access_price))
             prices)
      churns
  in
  Table.print
    ~align:(List.init (1 + List.length prices) (fun _ -> Table.Right))
    ~header:
      ("churn r"
      :: List.map (fun (d, _) -> Demand.name d) prices)
    rows;
  (* Verify against the Nash-product argmax numerically for one case. *)
  Common.subheader "numeric check: fee maximizes the Nash product";
  let d = Demand.Exponential 10.0 in
  let p = Pricing.monopoly_price d in
  let churn = 0.3 in
  let closed = Bargaining.bilateral_fee ~price:p ~churn ~access_price in
  let numeric =
    Poc_util.Numeric.maximize_unimodal ~lo:(-.p) ~hi:p (fun fee ->
        Bargaining.nash_product ~demand:d ~price:p ~churn ~access_price ~fee)
  in
  Printf.printf "closed form %.6f vs numeric argmax %.6f (|Δ| = %.2e)\n" closed
    numeric
    (Float.abs (closed -. numeric));
  print_endline
    "paper shape: fee strictly decreasing in r; sign flips (the LMP pays\n\
     the CSP) once r*c exceeds the service price p."
