(* E3 — social welfare: NN vs UR (Sections 4.3-4.4).

   For each demand family we compare social and consumer welfare under
   network neutrality (no fees), unilateral fee setting (double
   marginalization) and the bargaining equilibrium, plus the full
   reference economy. *)

module Demand = Poc_econ.Demand
module Pricing = Poc_econ.Pricing
module Welfare = Poc_econ.Welfare
module Equilibrium = Poc_econ.Equilibrium
module Regime = Poc_econ.Regime
module Table = Poc_util.Table

let run ~scale ~seed =
  ignore scale;
  ignore seed;
  Common.header "E3 — social welfare under NN vs UR regimes";
  Common.subheader "per demand family (unit consumer mass, <rc> = 1)";
  let rows =
    List.map
      (fun d ->
        let p_nn = Pricing.monopoly_price d in
        let sw_nn = Welfare.social d ~price:p_nn in
        let t_uni = Pricing.unilateral_fee d in
        let p_uni = Pricing.price_given_fee d ~fee:t_uni in
        let sw_uni = Welfare.social d ~price:p_uni in
        let sw_bar, fee_bar =
          match Equilibrium.solve_rc ~demand:d ~rc:1.0 () with
          | Some eq -> (Welfare.social d ~price:eq.Equilibrium.price, eq.Equilibrium.fee)
          | None -> (nan, nan)
        in
        [
          Demand.name d;
          Common.fmt ~decimals:2 p_nn;
          Common.fmt ~decimals:2 sw_nn;
          Common.fmt ~decimals:2 t_uni;
          Common.fmt ~decimals:2 sw_uni;
          Common.fmt ~decimals:2 fee_bar;
          Common.fmt ~decimals:2 sw_bar;
          Printf.sprintf "%.1f%%" (100.0 *. (sw_nn -. sw_uni) /. sw_nn);
        ])
      Demand.all_families
  in
  Table.print
    ~align:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right; Table.Right ]
    ~header:
      [ "demand"; "p* NN"; "SW NN"; "t* uni"; "SW uni"; "t~ barg"; "SW barg";
        "DWL uni" ]
    rows;
  Common.subheader "reference economy (4 CSPs x 3 LMPs), all regimes";
  let economy = Regime.default_economy in
  let rows =
    List.map
      (fun regime ->
        let o = Regime.evaluate economy regime in
        [
          Regime.regime_name regime;
          Common.fmt ~decimals:2 o.Regime.total_social;
          Common.fmt ~decimals:2 o.Regime.total_consumer;
          Common.fmt ~decimals:2 o.Regime.total_csp_profit;
          Common.fmt ~decimals:2 o.Regime.total_lmp_fee_revenue;
        ])
      [ Regime.Nn; Regime.Ur_bargained; Regime.Ur_unilateral ]
  in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "regime"; "social W"; "consumer W"; "CSP profit"; "LMP fee rev" ]
    rows;
  print_endline
    "paper shape: social welfare strictly ordered NN > UR; fees only move\n\
     surplus to LMPs while destroying some of it (deadweight loss)."
