(* E14 (extension) — incremental deployability (Section 5): the POC
   enters the existing AS ecosystem as one more (cheap, flat) transit
   AS and wins traffic pair by pair; nobody else has to change
   anything. *)

module As_graph = Poc_baseline.As_graph
module Poc_as = Poc_baseline.Poc_as
module Cashflow = Poc_baseline.Cashflow
module Prng = Poc_util.Prng
module Table = Poc_util.Table

let run ~scale ~seed =
  ignore scale;
  Common.header "E14 — incremental deployment: POC as a new transit AS";
  let g = As_graph.generate ~seed () in
  let stubs = Array.of_list (As_graph.stubs g) in
  let rng = Prng.create (seed + 3) in
  let demands =
    List.init 300 (fun _ ->
        let rec pick () =
          let a = Prng.pick rng stubs and b = Prng.pick rng stubs in
          if a = b then pick () else (a, b, 1.0 +. Prng.float rng)
        in
        pick ())
  in
  let incumbent_price = Cashflow.default_transit_price g in
  let rows =
    List.map
      (fun fraction ->
        let i = Poc_as.integrate ~attach_fraction:fraction ~seed:(seed + 7) g in
        let c =
          Poc_as.measure g i ~demands ~poc_price:250.0 ~incumbent_price
        in
        [
          Printf.sprintf "%.0f%%" (100.0 *. fraction);
          string_of_int (List.length i.Poc_as.attached_stubs);
          Printf.sprintf "%.1f%%" (100.0 *. c.Poc_as.capture_fraction);
          Printf.sprintf "%.0f" c.Poc_as.stub_outlay_before;
          Printf.sprintf "%.0f" c.Poc_as.stub_outlay_after;
          Printf.sprintf "%.1f%%" (100.0 *. c.Poc_as.savings_fraction);
        ])
      [ 0.1; 0.25; 0.5; 0.75; 1.0 ]
  in
  Table.print
    ~align:Table.[ Right; Right; Right; Right; Right; Right ]
    ~header:
      [ "LMPs attached"; "stubs"; "traffic via POC"; "outlay before $";
        "outlay after $"; "stub savings" ]
    rows;
  print_endline
    "expected shape: capture and savings grow smoothly with adoption —\n\
     no flag day; pairs that share an incumbent transit keep it (ties\n\
     stick with existing relationships), everything else moves."
