(* E10 (extension) — several coexisting, interconnected POCs
   (Section 1.2): per-region break-even prices and the fragmentation
   overhead of running R regional nonprofits instead of one global
   one. *)

module Federation = Poc_federation.Federation
module Planner = Poc_core.Planner

let run ~scale ~seed =
  Common.header "E10 — federated POCs: regional prices and fragmentation overhead";
  let config =
    (* Regional re-auctions each pay a full mechanism run; keep the
       default instance mid-size. *)
    match scale with
    | Common.Paper ->
      Common.plan_config ~scale ~seed ~rule:Poc_auction.Acceptability.Handle_load
    | Common.Quick ->
      Planner.scaled_config ~sites:30 ~bps:8
        { Planner.default_config with Planner.seed;
          rule = Poc_auction.Acceptability.Handle_load }
  in
  match Planner.build config with
  | Error msg -> Printf.printf "plan failed: %s\n" msg
  | Ok plan ->
    Printf.printf "single POC spend: $%.0f\n"
      plan.Planner.outcome.Poc_auction.Vcg.total_payment;
    List.iter
      (fun regions ->
        match
          Common.timed
            (Printf.sprintf "federation of %d" regions)
            (fun () -> Federation.build plan ~regions)
        with
        | Error msg -> Printf.printf "%d regions: %s\n" regions msg
        | Ok f ->
          Printf.printf "\n%d regional POCs (inter-region traffic %.0f Gbps):\n"
            regions f.Federation.inter_gbps;
          print_string (Federation.render plan f);
          Printf.printf
            "federation spend $%.0f (+ interconnect $%.0f) -> overhead %+.1f%% vs single POC\n"
            f.Federation.federation_spend f.Federation.interconnect.Poc_auction.Vcg.cost
            (100.0 *. Federation.fragmentation_overhead f))
      [ 2; 3 ];
    print_endline
      "\nexpected shape: regional posted prices diverge (sparse regions pay\n\
       more per Gbps — the NBN cross-subsidy debate), and fragmentation\n\
       costs a few percent because regions cannot pool link choices."
