(* E19 (extension) — continent-scale feasibility: the docs/SCALING.md
   numbers.  Generates the --scale WAN preset (~10^5 offered links;
   quick mode shrinks it to ~2x10^4), then answers the same sequence of
   single-link feasibility questions three ways:

     scratch   a full Router.route per toggled enabled set
     repair    Router.route_toggle against one shared base routing
     warm      a Feascache probe after the repair pass populated it

   and reports per-query rates plus the combined speedup of the cached
   path (repair to populate + warm hits thereafter) over from-scratch —
   the >= 5x headline.  A second part replays a small market at jobs
   {1,4} with the cache enabled and disabled and checks the four runs
   byte-identical via Epochs.encode_result: the determinism claim the
   cache and the incremental router must both uphold. *)

module Wan = Poc_topology.Wan
module Graph = Poc_graph.Graph
module Router = Poc_mcf.Router
module Feascache = Poc_auction.Feascache
module Acc = Poc_auction.Acceptability
module Planner = Poc_core.Planner
module Epochs = Poc_market.Epochs
module Pool = Poc_util.Pool

(* Quick mode: same generator, shrunk footprint (~2x10^4 links). *)
let quick_params =
  {
    Wan.scale_params with
    Wan.n_sites = 260;
    n_operators = 70;
    n_bps = 50;
    operator_min_sites = 22;
    operator_max_sites = 48;
    colocation_threshold = 8;
    external_attachments = 12;
  }

(* Deterministic demand set over the POC graph: spread endpoints across
   the node range, volumes small enough that the base set is feasible. *)
let make_demands g ~count =
  let n = Graph.node_count g in
  List.init count (fun i ->
      let a = (i * 7919) mod n in
      let b = (a + 1 + ((i * 104729) mod (n - 1))) mod n in
      (min a b, max a b, 4.0 +. float_of_int (i mod 5)))

(* The toggle sequence mixes edges that carry base flow (real repair
   work) with edges spread over the whole id space (mostly idle, the
   common case at this sparsity). *)
let make_toggles ~m ~used ~count =
  let used = Array.of_list used in
  let seen = Hashtbl.create count in
  let out = ref [] in
  let push e =
    if not (Hashtbl.mem seen e) then begin
      Hashtbl.add seen e ();
      out := e :: !out
    end
  in
  for i = 0 to (count / 2) - 1 do
    if Array.length used > 0 then
      push used.(i * 31 mod Array.length used)
  done;
  let i = ref 0 in
  while List.length !out < count && !i < m do
    push (!i * 6151 mod m);
    incr i
  done;
  List.rev !out

let key_without ~m eid =
  String.init m (fun i -> if i = eid then '0' else '1')

let part_scale ~scale ~seed =
  let params =
    match scale with
    | Common.Paper -> Wan.scale_params
    | Common.Quick -> quick_params
  in
  let wan = Common.timed "generate --scale wan" (fun () ->
      Wan.generate ~params ~seed ())
  in
  let g = wan.Wan.graph in
  let m = Graph.edge_count g in
  Printf.printf "offered links: %d  poc routers: %d\n" m (Graph.node_count g);
  let demands = make_demands g ~count:12 in
  let base = Router.route g ~demands in
  Printf.printf "base: feasible=%b routed=%.0f Gbps on %d links\n"
    base.Router.feasible (Router.total_routed base)
    (List.length (Router.used_edges base));
  let n_queries =
    match scale with Common.Paper -> 60 | Common.Quick -> 40
  in
  let toggles =
    make_toggles ~m ~used:(Router.used_edges base) ~count:n_queries
  in
  let nq = List.length toggles in
  (* Pass 1: from-scratch route per toggled set. *)
  let scratch = Array.make nq false in
  let (), scratch_s =
    Common.timed_s "scratch pass" (fun () ->
        List.iteri
          (fun i eid ->
            let r = Router.route ~enabled:(fun id -> id <> eid) g ~demands in
            scratch.(i) <- r.Router.feasible)
          toggles)
  in
  (* Pass 2: incremental repair against the shared base, populating the
     cache the way Vcg.run's rule_ok does. *)
  let cache = Feascache.create ~digest:(Printf.sprintf "e19-seed%d" seed) in
  let repaired = Array.make nq false in
  let (), repair_s =
    Common.timed_s "repair pass" (fun () ->
        List.iteri
          (fun i eid ->
            let r = Router.route_toggle g ~demands ~base (Router.Remove eid) in
            repaired.(i) <- r.Router.feasible;
            Feascache.add_feas cache (key_without ~m eid) r.Router.feasible)
          toggles)
  in
  Feascache.join cache;
  (* Pass 3: the same queries served warm from the cache. *)
  let warm_hits = ref 0 in
  let (), warm_s =
    Common.timed_s "warm pass" (fun () ->
        List.iteri
          (fun i eid ->
            match Feascache.find_feas cache (key_without ~m eid) with
            | Some v ->
              incr warm_hits;
              assert (v = repaired.(i))
            | None -> ())
          toggles)
  in
  (* route_toggle's verdict is a superset of route's: scratch-feasible
     must imply repair-feasible. *)
  let agree = ref 0 in
  Array.iteri
    (fun i s -> if s && not repaired.(i) then failwith "verdict regression"
      else if s = repaired.(i) then incr agree)
    scratch;
  let per q s = float_of_int q /. s in
  let speedup_repair = scratch_s /. repair_s in
  let speedup_warm = scratch_s /. warm_s in
  let combined = 2.0 *. scratch_s /. (repair_s +. warm_s) in
  Poc_util.Table.print
    ~align:[ Poc_util.Table.Left; Poc_util.Table.Right; Poc_util.Table.Right ]
    ~header:[ "mode"; "queries/s"; "speedup" ]
    [
      [ "scratch"; Common.fmt ~decimals:1 (per nq scratch_s); "1.0" ];
      [ "repair"; Common.fmt ~decimals:1 (per nq repair_s);
        Common.fmt ~decimals:1 speedup_repair ];
      [ "warm"; Common.fmt ~decimals:1 (per nq warm_s);
        Common.fmt ~decimals:1 speedup_warm ];
    ];
  Printf.printf
    "%d/%d verdicts agree (repair is a superset: no regressions)\n"
    !agree nq;
  Printf.printf "warm hits: %d/%d\n" !warm_hits nq;
  Printf.printf
    "combined feasibility-query speedup (repair + warm vs scratch): %.1fx \
     (target >= 5x)\n"
    combined;
  Printf.sprintf
    "{\"links\":%d,\"queries\":%d,\"scratch_s\":%.4f,\"repair_s\":%.4f,\
     \"warm_s\":%.4f,\"speedup_repair\":%.2f,\"speedup_warm\":%.2f,\
     \"speedup_combined\":%.2f}"
    m nq scratch_s repair_s warm_s speedup_repair speedup_warm combined

(* Byte-identity of market outcomes: cache {on,off} x jobs {1,4}. *)
let part_identity ~seed =
  Common.subheader "outcome identity: cache {on,off} x jobs {1,4}";
  let config =
    Planner.scaled_config ~sites:24 ~bps:8
      { Planner.default_config with Planner.seed; rule = Acc.Handle_load }
  in
  match Planner.build config with
  | Error msg -> failwith ("planning failed: " ^ msg)
  | Ok plan ->
    let market = { Epochs.default_config with Epochs.epochs = 3; seed } in
    let was_enabled = Feascache.enabled () in
    let run_one ~cache_on ~jobs =
      Feascache.set_enabled cache_on;
      let results =
        Pool.with_pool ~jobs (fun pool -> Epochs.run ?pool plan market)
      in
      String.concat "" (List.map Epochs.encode_result results)
    in
    let runs =
      List.map
        (fun (cache_on, jobs) ->
          ((cache_on, jobs), run_one ~cache_on ~jobs))
        [ (true, 1); (true, 4); (false, 1); (false, 4) ]
    in
    Feascache.set_enabled was_enabled;
    let (_, reference) = List.hd runs in
    let identical =
      List.for_all (fun (_, bytes) -> String.equal bytes reference) runs
    in
    List.iter
      (fun ((cache_on, jobs), bytes) ->
        Printf.printf "cache=%-3s jobs=%d  %d bytes  %s\n"
          (if cache_on then "on" else "off")
          jobs (String.length bytes)
          (if String.equal bytes reference then "identical" else "DIFFERS"))
      runs;
    if not identical then failwith "cache/jobs outcome divergence";
    Printf.printf "all four runs byte-identical: %b\n" identical;
    Printf.sprintf "{\"configs\":4,\"identical\":%b}" identical

let run ~scale ~seed =
  Common.header
    "E19 — continent-scale feasibility: cache + incremental repair vs scratch";
  Common.reset_metrics ();
  let scale_json = part_scale ~scale ~seed in
  let identity_json = part_identity ~seed in
  Common.write_metrics_artifact
    ~extra:[ ("scale", scale_json); ("identity", identity_json) ]
    ~label:"e19" ()
