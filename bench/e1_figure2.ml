(* E1 — Figure 2: payment-over-bid margins (PoB) of the five largest
   BPs under Constraints #1, #2 and #3.

   The paper's figure shows, per BP (ordered by decreasing size), three
   bars: PoB = (Pα − Cα(SLα)) / Cα(SLα) under each constraint.  We
   regenerate the whole pipeline — synthetic zoo-like WAN, gravity
   traffic matrix, truthful bids, VCG mechanism — and print the same
   series. *)

module Planner = Poc_core.Planner
module Vcg = Poc_auction.Vcg
module Acc = Poc_auction.Acceptability
module Wan = Poc_topology.Wan
module Table = Poc_util.Table

let rules = [ Acc.Handle_load; Acc.Single_link_failure; Acc.Per_pair_failure ]

(* The full Figure 2 sweep: one plan per constraint.  [?pool]
   parallelizes each auction's pivots and selector arms; the plans are
   identical with or without it (asserted below). *)
let sweep ?pool ~scale ~seed ~quiet () =
  List.map
    (fun rule ->
      let config = Common.plan_config ~scale ~seed ~rule in
      match Planner.build ?pool config with
      | Ok plan -> (rule, Some plan)
      | Error msg ->
        if not quiet then Printf.printf "%s: %s\n" (Acc.name rule) msg;
        (rule, None))
    rules

(* Bit-exact outcome comparison across jobs counts: selections, C(SL),
   and every BP's payment and PoB must match the serial sweep. *)
let same_outcomes a b =
  List.for_all2
    (fun (ra, pa) (rb, pb) ->
      ra = rb
      &&
      match (pa, pb) with
      | None, None -> true
      | Some pa, Some pb ->
        let oa = pa.Planner.outcome and ob = pb.Planner.outcome in
        oa.Vcg.selection.Vcg.selected = ob.Vcg.selection.Vcg.selected
        && oa.Vcg.selection.Vcg.cost = ob.Vcg.selection.Vcg.cost
        && oa.Vcg.total_payment = ob.Vcg.total_payment
        && Array.for_all2
             (fun (x : Vcg.bp_result) (y : Vcg.bp_result) ->
               x.Vcg.payment = y.Vcg.payment && x.Vcg.pob = y.Vcg.pob)
             oa.Vcg.bp_results ob.Vcg.bp_results
      | None, Some _ | Some _, None -> false)
    a b

let speedup_jobs = 4

let run ~scale ~seed =
  Common.header
    (Printf.sprintf "E1 / Figure 2 — PoB margins of the 5 largest BPs (%s scale, seed %d)"
       (Common.scale_name scale) seed);
  Common.reset_metrics ();
  let outcomes, serial_s =
    Common.timed_s "serial sweep (--jobs 1)" (fun () ->
        sweep ~scale ~seed ~quiet:false ())
  in
  (match List.find_opt (fun (_, p) -> p <> None) outcomes with
  | Some (_, Some plan) ->
    Printf.printf "\ninstance: %s\n" (Wan.summary plan.Planner.wan);
    Printf.printf "traffic:  %s\n"
      (Format.asprintf "%a" Poc_traffic.Matrix.pp plan.Planner.matrix)
  | _ -> ());
  (* Selection summary per constraint. *)
  Common.subheader "selection per constraint";
  let sel_rows =
    List.filter_map
      (fun (rule, plan) ->
        match plan with
        | None -> None
        | Some plan ->
          let o = plan.Planner.outcome in
          Some
            [
              Acc.name rule;
              string_of_int (List.length o.Vcg.selection.Vcg.selected);
              Printf.sprintf "%.0f" o.Vcg.selection.Vcg.cost;
              Printf.sprintf "%.0f" o.Vcg.total_payment;
            ])
      outcomes
  in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "constraint"; "|SL|"; "C(SL) $"; "POC spend $" ]
    sel_rows;
  (* The Figure 2 series proper. *)
  Common.subheader "PoB per BP (5 largest, decreasing size) — the Figure 2 bars";
  (match outcomes with
  | (_, Some plan0) :: _ ->
    let top5 =
      Wan.bps_by_size plan0.Planner.wan |> List.filteri (fun i _ -> i < 5)
    in
    let pob_of rule bp =
      match List.assoc rule (List.map (fun (r, p) -> (r, p)) outcomes) with
      | None -> nan
      | Some plan -> plan.Planner.outcome.Vcg.bp_results.(bp).Vcg.pob
    in
    let rows =
      List.mapi
        (fun i bp ->
          let share = plan0.Planner.wan.Wan.bps.(bp).Wan.share in
          [
            Printf.sprintf "BP%d (%s)" (i + 1)
              plan0.Planner.wan.Wan.bps.(bp).Wan.bp_name;
            Printf.sprintf "%.1f%%" (100.0 *. share);
            Common.fmt (pob_of Acc.Handle_load bp);
            Common.fmt (pob_of Acc.Single_link_failure bp);
            Common.fmt (pob_of Acc.Per_pair_failure bp);
          ])
        top5
    in
    Table.print
      ~align:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~header:
        [ "BP (size order)"; "share"; "PoB #1"; "PoB #2"; "PoB #3" ]
      rows;
    print_endline
      "paper shape: PoB varies strongly across BPs (favoritism-optics\n\
       argument) and is larger under tighter constraints; values in the\n\
       0-0.2 band.";
    (* Also report the dispersion the paper remarks on. *)
    let all_pobs rule =
      List.filter_map
        (fun (r, p) ->
          if r = rule then
            Option.map
              (fun plan ->
                Array.to_list plan.Planner.outcome.Vcg.bp_results
                |> List.filter_map (fun (b : Vcg.bp_result) ->
                       if b.Vcg.bid_cost > 0.0 then Some b.Vcg.pob else None))
              p
          else None)
        outcomes
      |> List.concat
    in
    Common.subheader "PoB dispersion across all winning BPs";
    List.iter
      (fun rule ->
        match all_pobs rule with
        | [] -> ()
        | pobs ->
          let s = Poc_util.Stats.summarize (Array.of_list pobs) in
          Printf.printf "%-22s %s\n" (Acc.name rule)
            (Format.asprintf "%a" Poc_util.Stats.pp_summary s))
      rules
  | _ -> print_endline "no feasible plan; nothing to report");
  (* Serial-vs-parallel speedup on the identical sweep.  On a machine
     with one core this honestly reports < 1 (domain handoff overhead
     with nothing to run in parallel); the artifact records whatever
     this hardware measured alongside the equality verdict. *)
  Common.subheader
    (Printf.sprintf "domain-pool speedup (--jobs %d vs serial)" speedup_jobs);
  let par_outcomes, parallel_s =
    Poc_util.Pool.with_pool ~jobs:speedup_jobs (fun pool ->
        Common.timed_s
          (Printf.sprintf "parallel sweep (--jobs %d)" speedup_jobs)
          (fun () -> sweep ?pool ~scale ~seed ~quiet:true ()))
  in
  let identical = same_outcomes outcomes par_outcomes in
  if not identical then
    print_endline
      "ERROR: parallel sweep diverged from serial — determinism broken";
  let speedup = if parallel_s > 0.0 then serial_s /. parallel_s else nan in
  Printf.printf "speedup %.2fx (serial %.1fs / parallel %.1fs), outcomes %s\n"
    speedup serial_s parallel_s
    (if identical then "identical" else "DIVERGED");
  Common.write_metrics_artifact ~label:"e1"
    ~extra:
      [
        ( "parallel",
          Printf.sprintf
            "{\"jobs\":%d,\"serial_seconds\":%.3f,\"parallel_seconds\":%.3f,\
             \"speedup\":%.3f,\"outcomes_identical\":%b}"
            speedup_jobs serial_s parallel_s speedup identical );
      ]
    ()
