(* E1 — Figure 2: payment-over-bid margins (PoB) of the five largest
   BPs under Constraints #1, #2 and #3.

   The paper's figure shows, per BP (ordered by decreasing size), three
   bars: PoB = (Pα − Cα(SLα)) / Cα(SLα) under each constraint.  We
   regenerate the whole pipeline — synthetic zoo-like WAN, gravity
   traffic matrix, truthful bids, VCG mechanism — and print the same
   series. *)

module Planner = Poc_core.Planner
module Vcg = Poc_auction.Vcg
module Acc = Poc_auction.Acceptability
module Wan = Poc_topology.Wan
module Table = Poc_util.Table

let rules = [ Acc.Handle_load; Acc.Single_link_failure; Acc.Per_pair_failure ]

let run ~scale ~seed =
  Common.header
    (Printf.sprintf "E1 / Figure 2 — PoB margins of the 5 largest BPs (%s scale, seed %d)"
       (Common.scale_name scale) seed);
  Common.reset_metrics ();
  let outcomes =
    List.map
      (fun rule ->
        let config = Common.plan_config ~scale ~seed ~rule in
        let label = Acc.name rule in
        Common.timed label (fun () ->
            match Planner.build config with
            | Ok plan -> (rule, Some plan)
            | Error msg ->
              Printf.printf "%s: %s\n" label msg;
              (rule, None)))
      rules
  in
  (match List.find_opt (fun (_, p) -> p <> None) outcomes with
  | Some (_, Some plan) ->
    Printf.printf "\ninstance: %s\n" (Wan.summary plan.Planner.wan);
    Printf.printf "traffic:  %s\n"
      (Format.asprintf "%a" Poc_traffic.Matrix.pp plan.Planner.matrix)
  | _ -> ());
  (* Selection summary per constraint. *)
  Common.subheader "selection per constraint";
  let sel_rows =
    List.filter_map
      (fun (rule, plan) ->
        match plan with
        | None -> None
        | Some plan ->
          let o = plan.Planner.outcome in
          Some
            [
              Acc.name rule;
              string_of_int (List.length o.Vcg.selection.Vcg.selected);
              Printf.sprintf "%.0f" o.Vcg.selection.Vcg.cost;
              Printf.sprintf "%.0f" o.Vcg.total_payment;
            ])
      outcomes
  in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "constraint"; "|SL|"; "C(SL) $"; "POC spend $" ]
    sel_rows;
  (* The Figure 2 series proper. *)
  Common.subheader "PoB per BP (5 largest, decreasing size) — the Figure 2 bars";
  (match outcomes with
  | (_, Some plan0) :: _ ->
    let top5 =
      Wan.bps_by_size plan0.Planner.wan |> List.filteri (fun i _ -> i < 5)
    in
    let pob_of rule bp =
      match List.assoc rule (List.map (fun (r, p) -> (r, p)) outcomes) with
      | None -> nan
      | Some plan -> plan.Planner.outcome.Vcg.bp_results.(bp).Vcg.pob
    in
    let rows =
      List.mapi
        (fun i bp ->
          let share = plan0.Planner.wan.Wan.bps.(bp).Wan.share in
          [
            Printf.sprintf "BP%d (%s)" (i + 1)
              plan0.Planner.wan.Wan.bps.(bp).Wan.bp_name;
            Printf.sprintf "%.1f%%" (100.0 *. share);
            Common.fmt (pob_of Acc.Handle_load bp);
            Common.fmt (pob_of Acc.Single_link_failure bp);
            Common.fmt (pob_of Acc.Per_pair_failure bp);
          ])
        top5
    in
    Table.print
      ~align:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~header:
        [ "BP (size order)"; "share"; "PoB #1"; "PoB #2"; "PoB #3" ]
      rows;
    print_endline
      "paper shape: PoB varies strongly across BPs (favoritism-optics\n\
       argument) and is larger under tighter constraints; values in the\n\
       0-0.2 band.";
    (* Also report the dispersion the paper remarks on. *)
    let all_pobs rule =
      List.filter_map
        (fun (r, p) ->
          if r = rule then
            Option.map
              (fun plan ->
                Array.to_list plan.Planner.outcome.Vcg.bp_results
                |> List.filter_map (fun (b : Vcg.bp_result) ->
                       if b.Vcg.bid_cost > 0.0 then Some b.Vcg.pob else None))
              p
          else None)
        outcomes
      |> List.concat
    in
    Common.subheader "PoB dispersion across all winning BPs";
    List.iter
      (fun rule ->
        match all_pobs rule with
        | [] -> ()
        | pobs ->
          let s = Poc_util.Stats.summarize (Array.of_list pobs) in
          Printf.printf "%-22s %s\n" (Acc.name rule)
            (Format.asprintf "%a" Poc_util.Stats.pp_summary s))
      rules
  | _ -> print_endline "no feasible plan; nothing to report");
  Common.write_metrics_artifact ~label:"e1"
