(* Experiment harness: regenerates every quantitative artifact of the
   paper (Figure 2 plus the Section 4 analytical results, E1-E8 in
   DESIGN.md) and runs Bechamel micro-benchmarks of the kernels.

     dune exec bench/main.exe                 # all experiments, quick scale
     dune exec bench/main.exe -- e1 e3        # a subset
     dune exec bench/main.exe -- --paper e1   # full Figure 2 scale (slow)
     dune exec bench/main.exe -- --seed 7 all *)

let experiments =
  [
    ("e1", "Figure 2: PoB margins under constraints #1-#3", E1_figure2.run);
    ("e2", "link-withholding (collusion)", E2_collusion.run);
    ("e3", "social welfare NN vs UR", E3_welfare.run);
    ("e4", "double marginalization p*(t)", E4_doublemarg.run);
    ("e5", "Nash-bargained fee vs churn", E5_bargain.run);
    ("e6", "incumbent advantage", E6_incumbent.run);
    ("e7", "renegotiation equilibrium", E7_equilibrium.run);
    ("e8", "settlement & budget balance", E8_settlement.run);
    ("e9", "ablations: payment rule, ranking, routing", E9_ablation.run);
    ("e10", "federated POCs (extension)", E10_federation.run);
    ("e11", "availability under failures (extension)", E11_availability.run);
    ("e12", "multicast & CDN services (extension)", E12_services.run);
    ("e13", "retail pricing & last-mile congestion (extension)", E13_retail.run);
    ("e14", "incremental POC deployment (extension)", E14_transition.run);
    ("e15", "chaos: faults & graceful degradation (extension)", E15_chaos.run);
    ("e16", "daemon serving capacity (extension)", E16_daemon.run);
    ("e17", "chaos-fleet throughput (extension)", E17_fleet.run);
    ("e18", "flight recorder overhead (extension)", E18_flight.run);
    ("e19", "continent-scale feasibility: cache + repair (extension)",
      E19_scale.run);
    ("e20", "multi-run daemon: concurrent runs + fault isolation (extension)",
      E20_multirun.run);
    ("micro", "Bechamel kernel micro-benchmarks", Micro.run);
  ]

let run_selected ~scale ~seed names =
  let wanted =
    match names with
    | [] | [ "all" ] -> List.map (fun (n, _, _) -> n) experiments
    | _ :: _ -> names
  in
  let unknown =
    List.filter
      (fun n -> not (List.exists (fun (n', _, _) -> n' = n) experiments))
      wanted
  in
  match unknown with
  | _ :: _ ->
    Printf.eprintf "unknown experiment(s): %s\navailable: %s\n"
      (String.concat ", " unknown)
      (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
    exit 2
  | [] ->
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (name, _, run) ->
        if List.mem name wanted then run ~scale ~seed)
      experiments;
    Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)

open Cmdliner

let scale_arg =
  let doc = "Run at the paper's full Figure 2 scale (slow: tens of minutes)." in
  Arg.(value & flag & info [ "paper" ] ~doc)

let seed_arg =
  let doc = "Master PRNG seed for the generated instances." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc ~docv:"SEED")

let names_arg =
  let doc =
    "Experiments to run (e1-e8, micro, or 'all'); default runs everything."
  in
  Arg.(value & pos_all string [] & info [] ~doc ~docv:"EXPERIMENT")

let cmd =
  let doc = "Regenerate the paper's tables and figures" in
  let term =
    Term.(
      const (fun paper seed names ->
          let scale = if paper then Common.Paper else Common.Quick in
          run_selected ~scale ~seed names)
      $ scale_arg $ seed_arg $ names_arg)
  in
  Cmd.v (Cmd.info "poc-bench" ~doc) term

let () = exit (Cmd.eval cmd)
