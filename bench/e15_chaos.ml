(* E15 (extension) — graceful degradation under injected faults: the
   supervised epoch loop vs the unsupervised one on the same chaos
   schedule (BP bankruptcy + concurrent link failures + a full recall
   wave), reporting service level, ladder activations, and
   epochs-to-recovery per incident. *)

module Planner = Poc_core.Planner
module Settlement = Poc_core.Settlement
module Epochs = Poc_market.Epochs
module Wan = Poc_topology.Wan
module Acc = Poc_auction.Acceptability
module Fault = Poc_resilience.Fault
module Ladder = Poc_resilience.Ladder
module Supervisor = Poc_resilience.Supervisor

let chaos_specs (wan : Wan.t) =
  let biggest = match Wan.bps_by_size wan with b :: _ -> b | [] -> 0 in
  let n_bps = Array.length wan.Wan.bps in
  [
    Fault.Bp_bankruptcy { at_epoch = 3; bp = biggest };
    Fault.Link_failure { at_epoch = 3; count = 2; duration = 2 };
    Fault.Traffic_surge { at_epoch = 7; factor = 1.6; duration = 2 };
  ]
  @ List.init n_bps (fun bp ->
        Fault.Capacity_recall { at_epoch = 5; bp; fraction = 1.0; duration = 1 })

let run ~scale ~seed =
  Common.header "E15 — chaos: supervised degradation vs unsupervised epochs";
  Common.reset_metrics ();
  (* Ten supervised epochs each price a full VCG auction (and the
     recall wave walks the whole ladder), so the default quick
     instance is still too big to finish in bench time; use a smaller
     WAN at quick scale. *)
  let config =
    match scale with
    | Common.Paper -> Common.plan_config ~scale ~seed ~rule:Acc.Handle_load
    | Common.Quick ->
      Planner.scaled_config ~sites:24 ~bps:6
        { Planner.default_config with Planner.seed; rule = Acc.Handle_load }
  in
  match Common.timed "plan" (fun () -> Planner.build config) with
  | Error msg -> Printf.printf "planning failed: %s\n" msg
  | Ok plan ->
    let market =
      { Epochs.default_config with Epochs.epochs = 10; seed = seed + 2 }
    in
    let schedule =
      match Fault.compile plan.Planner.wan ~seed:(seed + 3) (chaos_specs plan.Planner.wan) with
      | Ok s -> s
      | Error msg -> failwith ("bad chaos schedule: " ^ msg)
    in
    let report =
      Common.timed "supervised run" (fun () ->
          Supervisor.run plan ~market ~schedule)
    in
    print_string (Supervisor.render_epochs report);
    Common.subheader "incident log";
    print_string (Supervisor.render_incidents report);
    let healthy, degraded =
      List.partition
        (fun (er : Supervisor.epoch_report) ->
          er.Supervisor.status = Supervisor.Healthy)
        report.Supervisor.epochs
    in
    let mean f xs =
      match xs with
      | [] -> 0.0
      | _ ->
        List.fold_left (fun acc x -> acc +. f x) 0.0 xs
        /. float_of_int (List.length xs)
    in
    Printf.printf
      "\nhealthy epochs %d, degraded %d; ladder activations %d; mean \
       delivered (degraded) %.1f%%\n"
      (List.length healthy) (List.length degraded)
      report.Supervisor.ladder_activations
      (100.0
      *. mean
           (fun (er : Supervisor.epoch_report) ->
             er.Supervisor.delivered_fraction)
           degraded);
    (match report.Supervisor.violations with
    | [] -> print_endline "invariants: all hold (ledger, price, capacity)"
    | vs -> Printf.printf "INVARIANT VIOLATIONS: %d\n" (List.length vs));
    (match report.Supervisor.final_plan with
    | None -> ()
    | Some final ->
      let ledger = Settlement.of_plan final () in
      Printf.printf "closing ledger conservation: $%.6f\n"
        (Settlement.conservation ledger));
    (* The unsupervised loop on the same drift: it cannot see the
       faults, but a recall-heavy strategy mix shows what an epoch
       failure looks like without the ladder. *)
    let plain = Epochs.run plan market in
    let failed =
      List.filter (fun r -> r.Epochs.failure <> None) plain
    in
    Printf.printf
      "unsupervised baseline (no fault model): %d/%d epochs cleared\n"
      (List.length plain - List.length failed)
      (List.length plain);
    (* Journal overhead: the same supervised run with durability on
       (one flushed record per epoch + periodic snapshots), and the
       cost of replaying the file back. *)
    Common.subheader "journal overhead";
    let path = Filename.temp_file "bench_journal" ".bin" in
    let single_file_stats = ref None in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let journaled, single_s =
          Common.timed_s "supervised run (journaled)" (fun () ->
              Supervisor.run plan ~journal:path ~market ~schedule)
        in
        let replayed =
          Common.timed "journal replay" (fun () ->
              Poc_resilience.Journal.replay path)
        in
        match replayed with
        | Error msg -> Printf.printf "replay failed: %s\n" msg
        | Ok r ->
          single_file_stats :=
            Some (single_s, r.Poc_resilience.Journal.valid_bytes);
          Printf.printf
            "journal: %d bytes for %d epochs (%d records, snapshot every \
             %d); rendered output %s\n"
            r.Poc_resilience.Journal.valid_bytes market.Epochs.epochs
            (List.length r.Poc_resilience.Journal.records)
            r.Poc_resilience.Journal.header.Poc_resilience.Journal.snapshot_every
            (if
               Supervisor.render_epochs journaled
               = Supervisor.render_epochs report
             then "identical to the unjournaled run"
             else "DIVERGED from the unjournaled run"));
    (* Rotation overhead: the same run against a segmented store at a
       few byte budgets.  Tighter budgets rotate (and GC) more often;
       the bytes left on disk shrink to the active window while the
       wall clock should stay within noise of the single-file run. *)
    Common.subheader "rotation overhead (segmented store)";
    let bytes_on_disk dir =
      Array.fold_left
        (fun acc name ->
          let p = Filename.concat dir name in
          if Sys.is_directory p then acc
          else acc + (Unix.stat p).Unix.st_size)
        0 (Sys.readdir dir)
    in
    let rm_store dir =
      if Sys.file_exists dir then begin
        Array.iter
          (fun name ->
            let p = Filename.concat dir name in
            if not (Sys.is_directory p) then Sys.remove p)
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end
    in
    let seg_rows =
      List.map
        (fun budget ->
          let dir =
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Printf.sprintf "bench_segstore_%d" budget)
          in
          Fun.protect
            ~finally:(fun () -> rm_store dir)
            (fun () ->
              let journaled, dt =
                Common.timed_s
                  (Printf.sprintf "segmented run (budget %d)" budget)
                  (fun () ->
                    Supervisor.run plan ~journal:dir ~segment_bytes:budget
                      ~market ~schedule)
              in
              let bytes = bytes_on_disk dir in
              let live =
                match Poc_resilience.Journal.replay dir with
                | Ok r -> List.length r.Poc_resilience.Journal.live_segments
                | Error _ -> 0
              in
              Printf.printf
                "budget %6d: %.2f epochs/s, %d bytes on disk, %d live \
                 segments; rendered output %s\n"
                budget
                (float_of_int market.Epochs.epochs /. dt)
                bytes live
                (if
                   Supervisor.render_epochs journaled
                   = Supervisor.render_epochs report
                 then "identical"
                 else "DIVERGED");
              Printf.sprintf
                "{\"budget\":%d,\"seconds\":%.3f,\"epochs_per_s\":%.3f,\"bytes_on_disk\":%d,\"live_segments\":%d}"
                budget dt
                (float_of_int market.Epochs.epochs /. dt)
                bytes live))
        [ 4096; 16384; 65536 ]
    in
    let rotation_json =
      let single =
        match !single_file_stats with
        | Some (s, bytes) ->
          Printf.sprintf "{\"seconds\":%.3f,\"bytes_on_disk\":%d}" s bytes
        | None -> "null"
      in
      Printf.sprintf "{\"single_file\":%s,\"segmented\":[%s]}" single
        (String.concat "," seg_rows)
    in
    print_endline
      "expected shape: every epoch keeps a priced outcome (no blackout),\n\
     the recall wave degrades to a ladder rung and recovers the next\n\
     epoch, and the ledger nets to zero throughout.";
    Common.write_metrics_artifact ~extra:[ ("rotation", rotation_json) ]
      ~label:"e15" ()
