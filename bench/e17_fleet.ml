(* E17 (extension) — chaos-fleet throughput: scenario-months per second
   when whole seeded supervised runs are sharded across the domain
   pool under the full crash × storage × degradation matrix.  Every
   scenario pays for its own segmented journal, kill chain (scrub +
   resume) and RESULT frame, so this is the end-to-end survival-study
   rate, not a kernel number.  The aggregate JSON report is asserted
   byte-identical across pool sizes while we are at it. *)

module Fleet = Poc_fleet.Driver
module Chaos_matrix = Poc_fleet.Chaos_matrix
module Pool = Poc_util.Pool

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    let rec go d =
      Array.iter
        (fun name ->
          let p = Filename.concat d name in
          if Sys.is_directory p then go p else Sys.remove p)
        (Sys.readdir d);
      Unix.rmdir d
    in
    go dir
  end
  else if Sys.file_exists dir then Sys.remove dir

let run ~scale ~seed =
  Common.header "E17 — chaos-fleet throughput: scenario-months/sec";
  Common.reset_metrics ();
  let months = match scale with Common.Paper -> 1000 | Common.Quick -> 48 in
  let fleet_config store =
    { (Fleet.default_config ~store) with Fleet.months; seed; topologies = 4 }
  in
  let rows =
    List.map
      (fun jobs ->
        let store =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "poc_e17_fleet_j%d" jobs)
        in
        rm_rf store;
        let (report, dt) =
          Common.timed_s
            (Printf.sprintf "fleet %d months, jobs=%d" months jobs)
            (fun () ->
              Pool.with_pool ~jobs (fun pool ->
                  match Fleet.run ?pool (fleet_config store) with
                  | Ok (Fleet.Finished report) -> report
                  | Ok (Fleet.Interrupted _) ->
                    failwith "bench fleet interrupted without kill-after"
                  | Error msg -> failwith ("fleet failed: " ^ msg)))
        in
        rm_rf store;
        (jobs, dt, float_of_int months /. dt, Fleet.report_to_json report))
      [ 1; 4; 8 ]
  in
  let json_1 =
    match rows with (_, _, _, j) :: _ -> j | [] -> assert false
  in
  let deterministic =
    List.for_all (fun (_, _, _, j) -> String.equal j json_1) rows
  in
  Poc_util.Table.print
    ~align:[ Poc_util.Table.Right; Poc_util.Table.Right; Poc_util.Table.Right ]
    ~header:[ "jobs"; "seconds"; "months/s" ]
    (List.map
       (fun (jobs, dt, rate, _) ->
         [ string_of_int jobs; Common.fmt ~decimals:1 dt;
           Common.fmt ~decimals:2 rate ])
       rows);
  Printf.printf "aggregate report identical across pool sizes: %b\n"
    deterministic;
  let jobs_block =
    String.concat ","
      (List.map
         (fun (jobs, dt, rate, _) ->
           Printf.sprintf
             "{\"jobs\":%d,\"seconds\":%.3f,\"months_per_s\":%.3f}" jobs dt
             rate)
         rows)
  in
  Common.write_metrics_artifact
    ~extra:
      [
        ( "fleet_throughput",
          Printf.sprintf
            "{\"months\":%d,\"matrix\":\"%s\",\"deterministic\":%b,\"runs\":[%s]}"
            months
            (Chaos_matrix.spec_of_axes
               { Chaos_matrix.with_crash = true; with_storage = true;
                 with_degrade = true })
            deterministic jobs_block );
      ]
    ~label:"e17" ()
