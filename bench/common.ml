(* Shared configuration and formatting for the experiment harness. *)

module Planner = Poc_core.Planner

let header title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" bar title bar

let subheader title = Printf.printf "\n--- %s ---\n" title

(* Quick mode reproduces every experiment's shape in a couple of
   minutes; paper mode runs the full Figure 2 scale (20 BPs, ~4-5k
   offered links) and takes tens of minutes. *)
type scale = Quick | Paper

let scale_name = function Quick -> "quick" | Paper -> "paper"

let plan_config ~scale ~seed ~rule =
  let base = { Planner.default_config with Planner.seed; rule } in
  match scale with
  | Paper -> base
  | Quick -> Planner.scaled_config ~sites:44 ~bps:14 base

let timed label f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  Printf.printf "[%s: %.1fs]\n" label (Unix.gettimeofday () -. t0);
  result

(* Like [timed], but also hands the elapsed seconds back to the caller
   — for benches that report ratios (e.g. serial vs parallel). *)
let timed_s label f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "[%s: %.1fs]\n" label dt;
  (result, dt)

let fmt = Poc_util.Table.fmt_float

(* Experiments that opt in snapshot the process-wide metrics registry
   (per-phase latency histograms plus work counters) into
   BENCH_<label>_metrics.json in the working directory, so perf
   regressions show up as diffs in checked artifacts rather than only
   in wall-clock noise.  Reset first so the snapshot covers one
   experiment, not the whole harness run. *)
module Metrics = Poc_obs.Metrics

let reset_metrics () = Metrics.reset Metrics.default

(* [extra] is a list of (key, raw-JSON-value) pairs spliced into the
   top-level object — e.g. the E1 serial-vs-parallel speedup block. *)
let write_metrics_artifact ?(extra = []) ~label () =
  let path = Printf.sprintf "BENCH_%s_metrics.json" label in
  let json = Metrics.to_json Metrics.default in
  let json =
    match extra with
    | [] -> json
    | _ :: _ ->
      (* to_json ends with "}\n"; splice the extras before the brace. *)
      let body = String.sub json 0 (String.length json - 2) in
      body
      ^ String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf ",\"%s\":%s" k v) extra)
      ^ "}\n"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "[metrics snapshot: %s]\n" path
