(* E9 — ablations of the design choices DESIGN.md calls out:

   (a) payment rule: the paper's strategy-proof VCG vs naive
       pay-as-bid — what the POC spends at truthful bids, and what a
       BP gains by inflating its bid under each rule;
   (b) the optimizer's two-ranking ensemble vs either ranking alone;
   (c) the router's congestion-awareness (alpha) vs pure
       shortest-path routing. *)

module Planner = Poc_core.Planner
module Vcg = Poc_auction.Vcg
module Bid = Poc_auction.Bid
module Router = Poc_mcf.Router
module Matrix = Poc_traffic.Matrix
module Wan = Poc_topology.Wan
module Table = Poc_util.Table

let markups = [ 0.0; 0.1; 0.25; 0.5; 1.0 ]

let run ~scale ~seed =
  ignore scale;
  Common.header "E9 — ablations (payment rule, ranking ensemble, congestion-aware routing)";
  (* A small instance keeps the markup sweep affordable. *)
  let config =
    Planner.scaled_config ~sites:26 ~bps:8
      { Planner.default_config with Planner.seed }
  in
  match Planner.build config with
  | Error msg -> Printf.printf "plan failed: %s\n" msg
  | Ok plan ->
    let problem = plan.Planner.problem in
    (* (a) payment rule, truthful bids. *)
    Common.subheader "(a) POC spend at truthful bids";
    (match (Vcg.run problem, Vcg.run_pay_as_bid problem) with
    | Some vcg, Some pab ->
      Printf.printf "VCG (strategy-proof): $%.0f\npay-as-bid:           $%.0f\n"
        vcg.Vcg.total_payment pab.Vcg.total_payment;
      Printf.printf
        "information rent the POC pays for truthfulness: $%.0f (%.1f%%)\n"
        (vcg.Vcg.total_payment -. pab.Vcg.total_payment)
        (100.0
        *. (vcg.Vcg.total_payment -. pab.Vcg.total_payment)
        /. pab.Vcg.total_payment)
    | _, _ -> print_endline "mechanism failed");
    (* ...and the incentive story: the largest BP inflates its bid. *)
    let bp = match Wan.bps_by_size plan.Planner.wan with b :: _ -> b | [] -> 0 in
    let true_bid = problem.Vcg.bids.(bp) in
    let utility mechanism factor =
      let bids = Array.copy problem.Vcg.bids in
      bids.(bp) <- Bid.scale true_bid (1.0 +. factor);
      match mechanism { problem with Vcg.bids } with
      | None -> nan
      | Some (o : Vcg.outcome) ->
        let r = o.Vcg.bp_results.(bp) in
        r.Vcg.payment -. Bid.cost true_bid r.Vcg.selected_links
    in
    Common.subheader
      (Printf.sprintf "(a') %s inflates its bid: profit under each rule"
         plan.Planner.wan.Wan.bps.(bp).Wan.bp_name);
    let rows =
      List.map
        (fun m ->
          [
            Printf.sprintf "+%.0f%%" (100.0 *. m);
            Printf.sprintf "%.0f" (utility Vcg.run m);
            Printf.sprintf "%.0f" (utility Vcg.run_pay_as_bid m);
          ])
        markups
    in
    Table.print
      ~align:[ Table.Right; Table.Right; Table.Right ]
      ~header:[ "bid markup"; "profit (VCG) $"; "profit (pay-as-bid) $" ]
      rows;
    print_endline
      "under pay-as-bid, inflating is monotonically profitable until the\n\
       BP prices itself out; under VCG with the deployed heuristic\n\
       optimizer there is residual manipulability (a reproduction\n\
       finding: VCG's guarantee holds only relative to the optimizer's\n\
       exactness), but no monotone inflate-and-win gradient.";
    (* Exact VCG on a small instance: the guarantee itself. *)
    Common.subheader "(a'') exact VCG on a 6-link instance: truth is optimal";
    let exact_problem, exact_bp =
      let g = Poc_graph.Graph.create () in
      Poc_graph.Graph.add_nodes g 3;
      let a = Poc_graph.Graph.add_edge g 0 1 ~weight:1.0 ~capacity:10.0 in
      let b = Poc_graph.Graph.add_edge g 1 2 ~weight:1.0 ~capacity:10.0 in
      let c = Poc_graph.Graph.add_edge g 0 1 ~weight:1.0 ~capacity:10.0 in
      let d = Poc_graph.Graph.add_edge g 1 2 ~weight:1.0 ~capacity:10.0 in
      let e = Poc_graph.Graph.add_edge g 0 2 ~weight:1.0 ~capacity:10.0 in
      let v = Poc_graph.Graph.add_edge g 0 2 ~weight:1.0 ~capacity:20.0 in
      ( {
          Vcg.graph = g;
          demands = [ (0, 1, 5.0); (1, 2, 5.0) ];
          bids =
            [|
              Bid.additive [ (a, 100.0); (b, 100.0) ];
              Bid.additive [ (c, 120.0); (d, 90.0); (e, 250.0) ];
            |];
          virtual_prices = [ (v, 1000.0) ];
          rule = Poc_auction.Acceptability.Handle_load;
        },
        0 )
    in
    let exact_utility factor =
      let true_bid = exact_problem.Vcg.bids.(exact_bp) in
      let bids = Array.copy exact_problem.Vcg.bids in
      bids.(exact_bp) <- Bid.scale true_bid (1.0 +. factor);
      match Vcg.run ~select:(fun ?banned ?cache p -> Vcg.select_exact ?banned ?cache p) { exact_problem with Vcg.bids } with
      | None -> nan
      | Some o ->
        let r = o.Vcg.bp_results.(exact_bp) in
        r.Vcg.payment -. Bid.cost true_bid r.Vcg.selected_links
    in
    Table.print
      ~align:[ Table.Right; Table.Right ]
      ~header:[ "bid markup"; "profit (exact VCG) $" ]
      (List.map
         (fun m ->
           [ Printf.sprintf "+%.0f%%" (100.0 *. m);
             Printf.sprintf "%.2f" (exact_utility m) ])
         markups);
    (* (b) ranking ensemble. *)
    Common.subheader "(b) selection cost by candidate ranking";
    let cost_of label selection =
      match selection with
      | Some (s : Vcg.selection) ->
        [ label; string_of_int (List.length s.Vcg.selected);
          Printf.sprintf "%.0f" s.Vcg.cost ]
      | None -> [ label; "-"; "infeasible" ]
    in
    Table.print
      ~align:[ Table.Left; Table.Right; Table.Right ]
      ~header:[ "ranking"; "|SL|"; "C(SL) $" ]
      [
        cost_of "price per Gbps only"
          (Vcg.select_greedy_single ~ranking:`Unit_price problem);
        cost_of "absolute price only"
          (Vcg.select_greedy_single ~ranking:`Absolute_price problem);
        cost_of "ensemble (shipped)" (Vcg.select_greedy problem);
      ];
    (* (c) congestion-aware routing. *)
    Common.subheader "(c) router congestion penalty alpha";
    let demands = Matrix.undirected_pair_demands plan.Planner.matrix in
    let enabled = Planner.backbone_enabled plan in
    let rows =
      List.map
        (fun alpha ->
          let r =
            Router.route ~enabled ~congestion_alpha:alpha
              plan.Planner.wan.Wan.graph ~demands
          in
          [
            Printf.sprintf "%.1f" alpha;
            (if r.Router.feasible then "yes" else "no");
            Printf.sprintf "%.3f"
              (Router.max_utilization plan.Planner.wan.Wan.graph r);
            string_of_int (Array.length r.Router.chunks);
          ])
        [ 0.0; 0.5; 1.0; 2.0; 4.0 ]
    in
    Table.print
      ~align:[ Table.Right; Table.Left; Table.Right; Table.Right ]
      ~header:[ "alpha"; "feasible"; "max util"; "path chunks" ]
      rows;
    print_endline
      "alpha = 0 is pure latency-shortest routing; the penalty spreads\n\
       load, which is what lets the oracle certify tighter link sets."
