(* E20 (extension) — the multi-run daemon: aggregate epochs/sec and p99
   bid-admission latency with 1, 4 and 8 concurrent runs multiplexed
   over one registry, on healthy disks and with one run on a
   transiently-failing disk (every Nth primitive op raises once; the
   per-run retrying backoff absorbs it).  Exercises run routing, the
   per-run intake logs and the shared domain pool exactly as
   `poc-cli serve --runs N` drives them, minus the socket — and shows
   that one run's flaky disk costs that run latency, not the fleet. *)

module Planner = Poc_core.Planner
module Acc = Poc_auction.Acceptability
module Epochs = Poc_market.Epochs
module Disk = Poc_resilience.Disk
module Protocol = Poc_daemon.Protocol
module Engine = Poc_daemon.Engine
module Registry = Poc_daemon.Registry

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    let rec go d =
      Array.iter
        (fun name ->
          let p = Filename.concat d name in
          if Sys.is_directory p then go p else Sys.remove p)
        (Sys.readdir d);
      Unix.rmdir d
    in
    go dir
  end
  else if Sys.file_exists dir then Sys.remove dir

(* Every [period]-th primitive op on this disk raises [Sys_error] once;
   the engine's jittered (near-zero-delay) backoff retries. *)
let flaky_disk ~period ~faults =
  let calls = ref 0 in
  let guard f =
    incr calls;
    if !calls mod period = 0 then begin
      incr faults;
      raise (Sys_error "bench: injected transient fault")
    end
    else f ()
  in
  let real = Disk.real_ops in
  let ops =
    {
      real with
      Disk.open_append = (fun p -> guard (fun () -> real.Disk.open_append p));
      Disk.open_trunc = (fun p -> guard (fun () -> real.Disk.open_trunc p));
      Disk.read_file = (fun p -> guard (fun () -> real.Disk.read_file p));
      Disk.rename = (fun a b -> guard (fun () -> real.Disk.rename a b));
    }
  in
  let policy =
    {
      Disk.default_retry_policy with
      Disk.retry_base_delay = 0.0002;
      retry_max_delay = 0.002;
    }
  in
  Engine.retrying_disk ~policy ~ops ()

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let idx = min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1) in
    List.nth sorted (max 0 idx)

let cmd line =
  match Protocol.parse_command line with
  | Ok c -> c
  | Error msg -> failwith ("bad bench command: " ^ msg)

(* One multi-run session: [runs] concurrent runs driven round-robin —
   each epoch every run admits [bids_per_run] bids then settles one
   epoch.  Returns (aggregate epochs/sec, p99 bid latency, faults). *)
let session plan ~market ~runs ~jobs ~faulty =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench_e20_%d_%b" runs faulty)
  in
  rm_rf root;
  Unix.mkdir root 0o755;
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      let faults = ref 0 in
      let flaky_run = runs - 1 in
      let disk_for ~run =
        if faulty && run = flaky_run then flaky_disk ~period:3 ~faults
        else Engine.retrying_disk ()
      in
      let n_bps = Array.length plan.Planner.problem.Poc_auction.Vcg.bids in
      let bids_per_run = 2 in
      Poc_util.Pool.with_pool ~jobs (fun pool ->
          let reg =
            match
              Registry.create ?pool ~disk_for ~runs ~max_runs:runs ~root plan
                ~market ()
            with
            | Ok r -> r
            | Error msg -> failwith ("registry create failed: " ^ msg)
          in
          let seqs = Array.make runs 0 in
          let bid_lat = ref [] in
          let t0 = Unix.gettimeofday () in
          for epoch = 1 to market.Epochs.epochs do
            for run = 0 to runs - 1 do
              for i = 0 to bids_per_run - 1 do
                seqs.(run) <- seqs.(run) + 1;
                let line =
                  Printf.sprintf "RUN %d BID %d %d %.4f %d" run seqs.(run)
                    ((epoch + i + run) mod n_bps)
                    (0.9 +. (0.01 *. float_of_int ((seqs.(run) * 7) mod 20)))
                    (i mod 4)
                in
                let b0 = Unix.gettimeofday () in
                ignore (Registry.dispatch reg (cmd line));
                bid_lat := (Unix.gettimeofday () -. b0) :: !bid_lat
              done;
              ignore
                (Registry.dispatch reg
                   (cmd (Printf.sprintf "RUN %d EPOCH 1" run)))
            done
          done;
          let dt = Unix.gettimeofday () -. t0 in
          ignore (Registry.dispatch reg (cmd "SHUTDOWN"));
          ( float_of_int (runs * market.Epochs.epochs) /. dt,
            percentile 0.99 !bid_lat,
            !faults )))

let run ~scale ~seed =
  Common.header
    "E20 — multi-run daemon: aggregate epochs/sec across concurrent runs";
  Common.reset_metrics ();
  let config =
    match scale with
    | Common.Paper -> Common.plan_config ~scale ~seed ~rule:Acc.Handle_load
    | Common.Quick ->
      Planner.scaled_config ~sites:24 ~bps:6
        { Planner.default_config with Planner.seed; rule = Acc.Handle_load }
  in
  match Common.timed "plan" (fun () -> Planner.build config) with
  | Error msg -> Printf.printf "planning failed: %s\n" msg
  | Ok plan ->
    let market =
      { Epochs.default_config with Epochs.epochs = 8; seed = seed + 2 }
    in
    let jobs = 4 in
    let rows =
      List.map
        (fun (runs, faulty) ->
          let label =
            Printf.sprintf "runs=%d %s" runs
              (if faulty then "one flaky disk" else "healthy disks")
          in
          let (eps, p99, faults), _ =
            Common.timed_s label (fun () ->
                session plan ~market ~runs ~jobs ~faulty)
          in
          Printf.printf
            "  %-24s %6.2f epochs/s, p99 bid %7.3f ms, %d faults retried\n"
            label eps (p99 *. 1000.0) faults;
          Printf.sprintf
            "{\"runs\":%d,\"one_flaky_disk\":%b,\"aggregate_epochs_per_s\":%.3f,\"p99_bid_seconds\":%.6f,\"faults_injected\":%d}"
            runs faulty eps p99 faults)
        [ (1, false); (4, false); (8, false); (1, true); (4, true); (8, true) ]
    in
    print_endline
      "expected shape: aggregate epochs/s grows with concurrent runs\n\
       (each run's settle is parallel inside, serialized across runs by\n\
       the single-writer loop), bid admission stays sub-millisecond,\n\
       and one run's flaky disk adds only that run's retry backoff —\n\
       never a failed or slowed sibling run.";
    Common.write_metrics_artifact
      ~extra:
        [ ("multirun_daemon", Printf.sprintf "[%s]" (String.concat "," rows)) ]
      ~label:"e20" ()
