(* E18 (extension) — flight-recorder overhead: the supervised epoch
   loop with the black-box recorder attached vs detached, on the same
   plan, market, and chaos schedule.  Every epoch pays the recorder's
   span/event/incident emissions plus the epoch-boundary flush of the
   FLIGHT file, so the delta is the full always-on observability tax —
   the number that justifies (or forbids) shipping the box enabled.
   Reports epochs/s and per-epoch p99 for both modes into
   BENCH_e18_metrics.json. *)

module Planner = Poc_core.Planner
module Epochs = Poc_market.Epochs
module Wan = Poc_topology.Wan
module Acc = Poc_auction.Acceptability
module Fault = Poc_resilience.Fault
module Supervisor = Poc_resilience.Supervisor
module Black_box = Poc_resilience.Black_box
module Metrics = Poc_obs.Metrics

let chaos_specs (wan : Wan.t) =
  let biggest = match Wan.bps_by_size wan with b :: _ -> b | [] -> 0 in
  [
    Fault.Bp_bankruptcy { at_epoch = 3; bp = biggest };
    Fault.Link_failure { at_epoch = 3; count = 2; duration = 2 };
    Fault.Capacity_recall { at_epoch = 5; bp = 0; fraction = 0.8; duration = 1 };
  ]

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    let rec go d =
      Array.iter
        (fun name ->
          let p = Filename.concat d name in
          if Sys.is_directory p then go p else Sys.remove p)
        (Sys.readdir d);
      Unix.rmdir d
    in
    go dir
  end
  else if Sys.file_exists dir then Sys.remove dir

let run ~scale ~seed =
  Common.header "E18 — flight recorder overhead: epochs/s, recorder on vs off";
  Common.reset_metrics ();
  let config =
    match scale with
    | Common.Paper -> Common.plan_config ~scale ~seed ~rule:Acc.Handle_load
    | Common.Quick ->
      Planner.scaled_config ~sites:16 ~bps:4
        { Planner.default_config with Planner.seed; rule = Acc.Handle_load }
  in
  let epochs, rounds =
    match scale with Common.Paper -> (12, 8) | Common.Quick -> (8, 3)
  in
  match Planner.build config with
  | Error msg -> Printf.printf "planning failed: %s\n" msg
  | Ok plan ->
    let market =
      { Epochs.default_config with Epochs.epochs; seed = seed + 2 }
    in
    let schedule () =
      match
        Fault.compile plan.Planner.wan ~seed:(seed + 3)
          (chaos_specs plan.Planner.wan)
      with
      | Ok s -> s
      | Error msg -> failwith ("bad chaos schedule: " ^ msg)
    in
    let bench_mode mode =
      let h =
        Metrics.histogram
          ~help:"Supervised epoch wall time by recorder mode (seconds)"
          ~labels:[ ("flight", mode) ]
          Metrics.default "poc_bench_epoch_seconds"
      in
      let store =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "poc_e18_flight_%s" mode)
      in
      let total = ref 0.0 and stepped = ref 0 in
      (* round 0 is an untimed warmup: the first supervised run pays
         page-cache and allocator warmup that would otherwise bias
         whichever mode runs first *)
      for round = 0 to rounds do
        rm_rf store;
        let flight =
          if mode = "on" then
            Some (Black_box.create (Filename.concat store "FLIGHT"))
          else None
        in
        let loop =
          Supervisor.open_run ?flight plan ~journal:store ~segment_bytes:4096
            ~market ~schedule:(schedule ())
        in
        let rec drive () =
          match Supervisor.next_epoch loop with
          | None -> ()
          | Some _ ->
            let t0 = Unix.gettimeofday () in
            ignore (Supervisor.step loop);
            let dt = Unix.gettimeofday () -. t0 in
            if round > 0 then begin
              Metrics.Histogram.observe h dt;
              total := !total +. dt;
              incr stepped
            end;
            drive ()
        in
        drive ();
        ignore (Supervisor.finish loop);
        Option.iter Black_box.close flight
      done;
      rm_rf store;
      let rate = float_of_int !stepped /. !total in
      (mode, rate, Metrics.Histogram.p99 h)
    in
    let off = bench_mode "off" in
    let on = bench_mode "on" in
    let rows = [ off; on ] in
    Poc_util.Table.print
      ~align:[ Poc_util.Table.Left; Poc_util.Table.Right; Poc_util.Table.Right ]
      ~header:[ "recorder"; "epochs/s"; "p99 ms" ]
      (List.map
         (fun (mode, rate, p99) ->
           [ mode; Common.fmt ~decimals:2 rate;
             Common.fmt ~decimals:3 (1e3 *. p99) ])
         rows);
    let (_, rate_off, p99_off) = off and (_, rate_on, p99_on) = on in
    let overhead_pct = 100.0 *. ((rate_off /. rate_on) -. 1.0) in
    Printf.printf "recorder throughput overhead: %.2f%%\n" overhead_pct;
    Common.write_metrics_artifact
      ~extra:
        [
          ( "flight_overhead",
            Printf.sprintf
              "{\"epochs\":%d,\"rounds\":%d,\"off\":{\"epochs_per_s\":%.3f,\"p99_s\":%.6f},\"on\":{\"epochs_per_s\":%.3f,\"p99_s\":%.6f},\"overhead_pct\":%.3f}"
              epochs rounds rate_off p99_off rate_on p99_on overhead_pct );
        ]
      ~label:"e18" ()
