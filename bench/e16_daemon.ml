(* E16 (extension) — the market daemon's serving capacity: engine-level
   epochs/sec and request latency under a live bid stream, at domain
   pools of 1 and 4, on a healthy disk and on one that fails
   transiently (every Nth primitive op raises, the daemon's jittered
   backoff retries).  Exercises admission, the durable intake log, and
   the supervised step loop exactly as `poc-cli serve` drives them,
   minus the socket. *)

module Planner = Poc_core.Planner
module Acc = Poc_auction.Acceptability
module Epochs = Poc_market.Epochs
module Fault = Poc_resilience.Fault
module Disk = Poc_resilience.Disk
module Protocol = Poc_daemon.Protocol
module Engine = Poc_daemon.Engine

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    let rec go d =
      Array.iter
        (fun name ->
          let p = Filename.concat d name in
          if Sys.is_directory p then go p else Sys.remove p)
        (Sys.readdir d);
      Unix.rmdir d
    in
    go dir
  end
  else if Sys.file_exists dir then Sys.remove dir

(* A disk whose primitive ops fail transiently: every [period]-th call
   raises [Sys_error] once.  The daemon retries with (near-zero-delay)
   backoff, so runs complete; the cost shows up as latency. *)
let flaky_disk ~period ~faults =
  let calls = ref 0 in
  let guard f =
    incr calls;
    if !calls mod period = 0 then begin
      incr faults;
      raise (Sys_error "bench: injected transient fault")
    end
    else f ()
  in
  let real = Disk.real_ops in
  let ops =
    {
      real with
      Disk.open_append = (fun p -> guard (fun () -> real.Disk.open_append p));
      Disk.open_trunc = (fun p -> guard (fun () -> real.Disk.open_trunc p));
      Disk.read_file = (fun p -> guard (fun () -> real.Disk.read_file p));
      Disk.rename = (fun a b -> guard (fun () -> real.Disk.rename a b));
    }
  in
  let policy =
    {
      Disk.default_retry_policy with
      Disk.retry_base_delay = 0.0002;
      retry_max_delay = 0.002;
    }
  in
  Engine.retrying_disk ~policy ~ops ()

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let idx =
      min (n - 1)
        (int_of_float (ceil (p *. float_of_int n)) - 1)
    in
    List.nth sorted (max 0 idx)

let req line =
  match Protocol.parse line with
  | Ok r -> r
  | Error msg -> failwith ("bad bench request: " ^ msg)

(* One serving session: [bids_per_epoch] live bids between epochs, the
   whole horizon stepped through EPOCH requests, then SHUTDOWN.
   Returns (epochs/sec, p99 bid latency, injected fault count). *)
let session plan ~market ~schedule ~jobs ~faulty =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench_e16_%d_%b" jobs faulty)
  in
  rm_rf root;
  Unix.mkdir root 0o755;
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      let faults = ref 0 in
      let disk =
        if faulty then flaky_disk ~period:3 ~faults
        else Engine.retrying_disk ()
      in
      let n_bps = Array.length plan.Planner.problem.Poc_auction.Vcg.bids in
      let bids_per_epoch = 4 in
      Poc_util.Pool.with_pool ~jobs (fun pool ->
          let engine =
            match
              Engine.create ?pool ~disk ~segment_bytes:65536
                ~store:(Filename.concat root "store")
                ~intake:(Filename.concat root "intake.log")
                plan ~market ~schedule
            with
            | Ok e -> e
            | Error msg -> failwith ("engine create failed: " ^ msg)
          in
          let seq = ref 0 in
          let bid_lat = ref [] in
          let t0 = Unix.gettimeofday () in
          for epoch = 1 to market.Epochs.epochs do
            for i = 0 to bids_per_epoch - 1 do
              incr seq;
              let line =
                Printf.sprintf "BID %d %d %.4f %d" !seq
                  ((epoch + i) mod n_bps)
                  (0.9 +. (0.01 *. float_of_int ((!seq * 7) mod 20)))
                  (i mod 4)
              in
              let b0 = Unix.gettimeofday () in
              ignore (Engine.handle engine (req line));
              bid_lat := (Unix.gettimeofday () -. b0) :: !bid_lat
            done;
            ignore (Engine.handle engine (req "EPOCH 1"))
          done;
          let dt = Unix.gettimeofday () -. t0 in
          ignore (Engine.handle engine (req "SHUTDOWN"));
          ( float_of_int market.Epochs.epochs /. dt,
            percentile 0.99 !bid_lat,
            !faults )))

let run ~scale ~seed =
  Common.header "E16 — daemon serving capacity: epochs/sec and bid latency";
  Common.reset_metrics ();
  let config =
    match scale with
    | Common.Paper -> Common.plan_config ~scale ~seed ~rule:Acc.Handle_load
    | Common.Quick ->
      Planner.scaled_config ~sites:24 ~bps:6
        { Planner.default_config with Planner.seed; rule = Acc.Handle_load }
  in
  match Common.timed "plan" (fun () -> Planner.build config) with
  | Error msg -> Printf.printf "planning failed: %s\n" msg
  | Ok plan ->
    let market =
      { Epochs.default_config with Epochs.epochs = 10; seed = seed + 2 }
    in
    let schedule =
      match Fault.compile plan.Planner.wan ~seed:(seed + 3) [] with
      | Ok s -> s
      | Error msg -> failwith ("bad schedule: " ^ msg)
    in
    let rows =
      List.map
        (fun (jobs, faulty) ->
          let label =
            Printf.sprintf "jobs=%d %s" jobs
              (if faulty then "flaky disk" else "healthy disk")
          in
          let (eps, p99, faults), _ =
            Common.timed_s label (fun () ->
                session plan ~market ~schedule ~jobs ~faulty)
          in
          Printf.printf
            "  %-22s %6.2f epochs/s, p99 bid %7.3f ms, %d faults retried\n"
            label eps (p99 *. 1000.0) faults;
          Printf.sprintf
            "{\"jobs\":%d,\"faulty_disk\":%b,\"epochs_per_s\":%.3f,\"p99_bid_seconds\":%.6f,\"faults_injected\":%d}"
            jobs faulty eps p99 faults)
        [ (1, false); (4, false); (1, true); (4, true) ]
    in
    print_endline
      "expected shape: bid admission stays sub-millisecond (append +\n\
       fsync), the flaky disk costs only the retry backoff (never a\n\
       failed run), and jobs=4 pays off on multi-core hosts while\n\
       oversubscribing a single core.";
    Common.write_metrics_artifact
      ~extra:
        [ ("daemon_serving", Printf.sprintf "[%s]" (String.concat "," rows)) ]
      ~label:"e16" ()
