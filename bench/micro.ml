(* Bechamel micro-benchmarks of the computational kernels behind the
   experiments: one Test.make per kernel, OLS-estimated ns/run. *)

open Bechamel
module Planner = Poc_core.Planner
module Wan = Poc_topology.Wan
module Matrix = Poc_traffic.Matrix
module Router = Poc_mcf.Router
module Prng = Poc_util.Prng
module Pool = Poc_util.Pool

let tiny_config =
  Planner.scaled_config ~sites:20 ~bps:6
    { Planner.default_config with Planner.seed = 5 }

let tests pool =
  let wan = Wan.generate ~params:tiny_config.Planner.params ~seed:5 () in
  let matrix = Matrix.gravity (Prng.create 9) wan ~total_gbps:600.0 () in
  let demands = Matrix.undirected_pair_demands matrix in
  let problem =
    Poc_auction.Setup.problem wan matrix
      ~rule:Poc_auction.Acceptability.Handle_load
  in
  let plan =
    match Planner.build tiny_config with
    | Ok plan -> plan
    | Error msg -> failwith ("micro: plan failed: " ^ msg)
  in
  let as_graph = Poc_baseline.As_graph.generate ~seed:3 () in
  [
    Test.make ~name:"gravity-traffic-matrix"
      (Staged.stage (fun () ->
           ignore (Matrix.gravity (Prng.create 9) wan ~total_gbps:600.0 ())));
    Test.make ~name:"mcf-route-feasibility"
      (Staged.stage (fun () -> ignore (Router.route wan.Wan.graph ~demands)));
    Test.make ~name:"yen-5-shortest-paths"
      (Staged.stage (fun () ->
           ignore
             (Poc_graph.Paths.k_shortest_paths wan.Wan.graph 0
                (Poc_graph.Graph.node_count wan.Wan.graph - 1)
                5)));
    Test.make ~name:"vcg-greedy-selection"
      (Staged.stage (fun () -> ignore (Poc_auction.Vcg.select_greedy problem)));
    Test.make ~name:"vcg-greedy-selection-pool2"
      (Staged.stage (fun () ->
           ignore (Poc_auction.Vcg.select_greedy ~pool problem)));
    Test.make ~name:"pool-map-handoff-64"
      (let xs = Array.init 64 Fun.id in
       Staged.stage (fun () -> ignore (Pool.map pool (fun x -> x + 1) xs)));
    Test.make ~name:"vcg-full-run-pool2"
      (Staged.stage (fun () -> ignore (Poc_auction.Vcg.run ~pool problem)));
    Test.make ~name:"nbs-equilibrium-fixed-point"
      (Staged.stage (fun () ->
           ignore
             (Poc_econ.Equilibrium.solve_rc
                ~demand:(Poc_econ.Demand.Exponential 10.0) ~rc:1.0 ())));
    Test.make ~name:"bgp-routes-to-one-dst"
      (Staged.stage (fun () -> ignore (Poc_baseline.Bgp.routes_to as_graph 0)));
    Test.make ~name:"settlement-ledger"
      (Staged.stage (fun () -> ignore (Poc_core.Settlement.of_plan plan ())));
  ]

let run ~scale ~seed =
  ignore scale;
  ignore seed;
  Common.header "micro-benchmarks (Bechamel, OLS ns/run)";
  (* A real 2-worker pool even on small machines, so the handoff and
     pooled-auction kernels measure actual cross-domain cost. *)
  let pool = Pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
  @@ fun () ->
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let analysis =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |]
  in
  let rows =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg instances test in
        let analyzed = Analyze.all analysis Toolkit.Instance.monotonic_clock results in
        Hashtbl.fold
          (fun name ols acc ->
            let estimate =
              match Analyze.OLS.estimates ols with
              | Some (t :: _) -> t
              | Some [] | None -> nan
            in
            let r2 =
              match Analyze.OLS.r_square ols with Some r -> r | None -> nan
            in
            [ name;
              (if Float.is_nan estimate then "n/a"
               else if estimate > 1e6 then Printf.sprintf "%.3f ms" (estimate /. 1e6)
               else if estimate > 1e3 then Printf.sprintf "%.3f us" (estimate /. 1e3)
               else Printf.sprintf "%.0f ns" estimate);
              Printf.sprintf "%.4f" r2 ]
            :: acc)
          analyzed [])
      (tests pool)
  in
  Poc_util.Table.print
    ~align:[ Poc_util.Table.Left; Poc_util.Table.Right; Poc_util.Table.Right ]
    ~header:[ "kernel"; "time/run"; "r²" ]
    rows
